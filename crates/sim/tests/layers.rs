//! Tests of the engine/coordinator/protocol layering: deterministic
//! replay, cross-protocol live migration, trait-object parity, and the
//! parallel experiment runner's serial equivalence.

use arbitree_baselines::{Grid, Hqc, Maekawa, Majority, Rowa, TreeQuorum};
use arbitree_core::ArbitraryProtocol;
use arbitree_quorum::ReplicaControl;
use arbitree_sim::{
    cell_seed, run_cells, run_simulation, ExperimentCell, FailureSchedule, SimConfig, SimDuration,
    SimReport, SimTime, Simulation,
};

fn config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        clients: 4,
        objects: 3,
        read_fraction: 0.6,
        duration: SimDuration::from_millis(250),
        ..SimConfig::default()
    }
}

/// Same seed, same schedule ⇒ byte-identical report (full struct equality,
/// history included — not just the headline metrics).
#[test]
fn deterministic_replay_is_byte_identical() {
    let run = || {
        let schedule = FailureSchedule::random(
            8,
            SimDuration::from_millis(250),
            SimDuration::from_millis(40),
            SimDuration::from_millis(10),
            3,
        );
        run_simulation(
            config(17),
            ArbitraryProtocol::parse("1-3-5").unwrap(),
            &schedule,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert!(a.consistent);
}

/// The tentpole scenario: a live ARBITRARY → ROWA migration mid-workload,
/// with the one-copy-serializability checker passing throughout.
#[test]
fn live_arbitrary_to_rowa_migration_is_one_copy_serializable() {
    let before = ArbitraryProtocol::parse("1-3-5").unwrap(); // n = 8
    let mut sim = Simulation::new(config(23), before);
    sim.schedule_reconfigure(SimTime::from_millis(120), Rowa::new(8));
    let report = sim.run();
    assert!(report.consistent, "{} violations", report.violations);
    assert_eq!(report.metrics.reconfigurations, 1);
    assert_eq!(report.metrics.migration_writes, 3); // one per object
    assert_eq!(sim.protocol().describe(), "ROWA");
    // Traffic on both sides of the family swap.
    assert!(report.metrics.reads_ok > 20);
    assert!(report.metrics.writes_ok > 5);
}

/// Chained migrations across three protocol families stay consistent.
#[test]
fn chained_cross_family_migrations() {
    let mut sim = Simulation::new(config(29), ArbitraryProtocol::parse("1-3-5").unwrap());
    sim.schedule_reconfigure(SimTime::from_millis(80), Rowa::new(8));
    sim.schedule_reconfigure(SimTime::from_millis(170), Majority::new(8));
    let report = sim.run();
    assert!(report.consistent, "{} violations", report.violations);
    assert_eq!(report.metrics.reconfigurations, 2);
    assert_eq!(sim.protocol().describe(), "MAJORITY");
}

/// Migrating into ROWA and back out again mid-workload round-trips.
#[test]
fn migration_round_trip_returns_to_arbitrary() {
    let mut sim = Simulation::new(config(31), Rowa::new(8));
    sim.schedule_reconfigure(
        SimTime::from_millis(100),
        ArbitraryProtocol::parse("1-3-5").unwrap(),
    );
    let report = sim.run();
    assert!(report.consistent);
    assert_eq!(report.metrics.reconfigurations, 1);
    assert_eq!(sim.protocol().describe(), "1-3-5");
}

/// `Box<dyn ReplicaControl>` must be a perfect stand-in for the concrete
/// type: for every baseline, the boxed run's report equals the concrete
/// run's report field-for-field.
#[test]
fn trait_object_parity_for_every_baseline() {
    fn parity(label: &str, proto: impl ReplicaControl + Clone + 'static) {
        let n = proto.universe().len();
        let cfg = config(41);
        let concrete = {
            let mut sim = Simulation::new(cfg.clone(), proto.clone());
            sim.run()
        };
        let boxed: Box<dyn ReplicaControl> = Box::new(proto);
        let via_dyn = {
            let mut sim = Simulation::from_boxed(cfg, boxed);
            sim.run()
        };
        assert_eq!(concrete, via_dyn, "{label} (n = {n})");
        assert!(concrete.consistent, "{label}");
    }
    parity("ARBITRARY", ArbitraryProtocol::parse("1-3-5").unwrap());
    parity("ROWA", Rowa::new(9));
    parity("MAJORITY", Majority::new(9));
    parity("TREE-QUORUM", TreeQuorum::new(2)); // n = 7
    parity("HQC", Hqc::new(2)); // n = 9
    parity("GRID", Grid::new(3, 3));
    parity("MAEKAWA", Maekawa::new(3, 3));
}

/// The acceptance-criteria pin: one cell run through the parallel runner
/// must be seed-for-seed identical to the same cell run serially.
#[test]
fn parallel_runner_matches_serial_for_pinned_cell() {
    let make_cell = |seed: u64| {
        let schedule = FailureSchedule::random(
            8,
            SimDuration::from_millis(250),
            SimDuration::from_millis(50),
            SimDuration::from_millis(12),
            seed,
        );
        ExperimentCell::new(
            format!("seed {seed}"),
            config(seed),
            ArbitraryProtocol::parse("1-3-5").unwrap(),
        )
        .with_failures(schedule)
    };

    // Serial reference for the pinned cell (seed 7).
    let serial: SimReport = {
        let schedule = FailureSchedule::random(
            8,
            SimDuration::from_millis(250),
            SimDuration::from_millis(50),
            SimDuration::from_millis(12),
            7,
        );
        run_simulation(
            config(7),
            ArbitraryProtocol::parse("1-3-5").unwrap(),
            &schedule,
        )
    };

    // The pinned cell rides inside a batch, surrounded by other cells that
    // race it for worker threads.
    let cells: Vec<ExperimentCell> = [3u64, 5, 7, 11, 13].into_iter().map(make_cell).collect();
    let results = run_cells(cells);
    assert_eq!(results.len(), 5);
    // Results arrive in input order regardless of completion order.
    assert_eq!(results[2].0, "seed 7");
    assert_eq!(results[2].1, serial);
}

/// Repeated parallel batches agree with each other run-for-run.
#[test]
fn parallel_runner_is_deterministic_across_batches() {
    let batch = || {
        let cells: Vec<ExperimentCell> = [1u64, 2, 3, 4, 5, 6, 7, 8]
            .into_iter()
            .map(|seed| {
                ExperimentCell::new(
                    format!("s{seed}"),
                    config(seed),
                    ArbitraryProtocol::parse("1-4-4").unwrap(),
                )
            })
            .collect();
        run_cells(cells)
    };
    assert_eq!(batch(), batch());
}

/// `cell_seed` is stable and spreads adjacent indices apart.
#[test]
fn cell_seed_is_stable_and_well_spread() {
    assert_eq!(cell_seed(42, 0), cell_seed(42, 0));
    let seeds: Vec<u64> = (0..64).map(|i| cell_seed(42, i)).collect();
    let mut unique = seeds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), seeds.len(), "collision in first 64 cells");
    // Adjacent cells differ in roughly half their bits.
    for w in seeds.windows(2) {
        let flipped = (w[0] ^ w[1]).count_ones();
        assert!(
            (8..=56).contains(&flipped),
            "weak diffusion: {flipped} bits"
        );
    }
}
