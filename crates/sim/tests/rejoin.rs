//! End-to-end tests of amnesia crashes and the staged anti-entropy rejoin.
//!
//! A site that crashes with amnesia loses its entire store. On recovery it
//! re-enters as `Syncing`: quorum traffic routes around it while the
//! rejoin manager reconciles it against a read quorum per shard, and only
//! then does it serve again. These tests drive the full protocol through
//! the deterministic event queue and check the safety gates the chaos
//! campaign also enforces: zero consistency violations and zero replies
//! served by a non-`Serving` site.

use arbitree_core::ArbitraryProtocol;
use arbitree_quorum::{ReplicaControl, SiteId};
use arbitree_sim::{NetworkConfig, SimConfig, SimDuration, SimTime, Simulation};

fn config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        clients: 4,
        objects: 6,
        read_fraction: 0.5,
        duration: SimDuration::from_millis(400),
        ..SimConfig::default()
    }
}

fn proto() -> ArbitraryProtocol {
    ArbitraryProtocol::parse("1-3-5").unwrap()
}

#[test]
fn amnesia_rejoin_completes_and_site_serves_again() {
    let mut sim = Simulation::new(config(1), proto());
    sim.schedule_amnesia_crash(SimTime::from_millis(50), SiteId::new(3));
    sim.schedule_recover(SimTime::from_millis(120), SiteId::new(3));
    let report = sim.run();
    assert!(report.consistent, "violations: {}", report.violations);
    assert_eq!(report.metrics.sync_violations, 0);
    assert_eq!(report.metrics.rejoins_completed, 1, "{}", report.metrics);
    assert!(report.metrics.sync_sessions > 0);
    assert!(
        report.metrics.sync_ranges_compared > 0,
        "{}",
        report.metrics
    );
    // The site lost writes it had and got them back.
    assert!(
        report.metrics.sync_keys_transferred > 0,
        "{}",
        report.metrics
    );
    assert!(!sim.rejoin().is_rejoining(SiteId::new(3)));
    // Work continued after the rejoin.
    assert!(report.metrics.writes_ok > 5, "{}", report.metrics);
    assert!(
        report.metrics.mean_rejoin_latency().is_some(),
        "latency recorded"
    );
}

#[test]
fn rejoined_site_converges_to_the_checker_model() {
    let mut cfg = config(3);
    cfg.read_fraction = 0.0; // write-heavy: the amnesiac owes a lot
    let mut sim = Simulation::new(cfg, proto());
    sim.schedule_amnesia_crash(SimTime::from_millis(60), SiteId::new(4));
    sim.schedule_recover(SimTime::from_millis(140), SiteId::new(4));
    let report = sim.run();
    assert!(report.consistent);
    assert_eq!(report.metrics.rejoins_completed, 1, "{}", report.metrics);
    // Every object committed *before* the crash must be present on the
    // rejoined site at a timestamp at least as new as what the sync pulled
    // — an empty store would fail this for any pre-crash write the site's
    // write quorums covered. We check the weaker, always-true form: the
    // rejoined site's store is no longer empty.
    let site = &sim.sites()[4];
    assert!(
        (0..6u32).any(|o| site.storage().read(arbitree_sim::ObjectId(o)).ts.version() > 0),
        "rejoined site still empty"
    );
}

#[test]
fn amnesia_runs_are_deterministic_per_seed() {
    let run = |seed| {
        let mut sim = Simulation::new(config(seed), proto());
        sim.schedule_amnesia_crash(SimTime::from_millis(40), SiteId::new(2));
        sim.schedule_recover(SimTime::from_millis(110), SiteId::new(2));
        sim.run()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.metrics, b.metrics);
    let c = run(8);
    assert_ne!(a.metrics, c.metrics);
}

#[test]
fn rejoin_survives_message_loss() {
    for seed in 0..4u64 {
        let mut cfg = config(seed);
        cfg.network = NetworkConfig {
            drop_probability: 0.15,
            ..NetworkConfig::default()
        };
        let mut sim = Simulation::new(cfg, proto());
        sim.schedule_amnesia_crash(SimTime::from_millis(40), SiteId::new(5));
        sim.schedule_recover(SimTime::from_millis(90), SiteId::new(5));
        let report = sim.run();
        assert!(report.consistent, "seed {seed}: {}", report.violations);
        assert_eq!(report.metrics.sync_violations, 0, "seed {seed}");
        assert_eq!(
            report.metrics.rejoins_completed, 1,
            "seed {seed}: {}",
            report.metrics
        );
        // Loss forced at least one backoff-paced retry on some seed; all
        // seeds must at least arm the timer machinery without violations.
        assert!(report.metrics.sync_sessions >= 1, "seed {seed}");
    }
}

#[test]
fn transient_crash_mid_sync_resumes_the_rejoin() {
    let mut sim = Simulation::new(config(11), proto());
    sim.schedule_amnesia_crash(SimTime::from_millis(40), SiteId::new(3));
    sim.schedule_recover(SimTime::from_millis(100), SiteId::new(3));
    // Knock it over again (storage intact this time) the instant the sync
    // starts, then bring it back: the rejoin must restart and still finish.
    sim.schedule_crash(SimTime::from_millis(101), SiteId::new(3));
    sim.schedule_recover(SimTime::from_millis(160), SiteId::new(3));
    let report = sim.run();
    assert!(report.consistent, "violations: {}", report.violations);
    assert_eq!(report.metrics.sync_violations, 0);
    assert_eq!(report.metrics.rejoins_completed, 1, "{}", report.metrics);
    assert!(!sim.rejoin().is_rejoining(SiteId::new(3)));
}

#[test]
fn concurrent_amnesia_crashes_both_rejoin() {
    // Two amnesiacs at once: each must sync from the remaining Serving
    // sites (neither may use the other as a source).
    let mut cfg = config(13);
    cfg.duration = SimDuration::from_millis(600);
    let mut sim = Simulation::new(cfg, proto());
    sim.schedule_amnesia_crash(SimTime::from_millis(40), SiteId::new(3));
    sim.schedule_amnesia_crash(SimTime::from_millis(45), SiteId::new(6));
    sim.schedule_recover(SimTime::from_millis(110), SiteId::new(3));
    sim.schedule_recover(SimTime::from_millis(115), SiteId::new(6));
    let report = sim.run();
    assert!(report.consistent, "violations: {}", report.violations);
    assert_eq!(report.metrics.sync_violations, 0);
    assert_eq!(report.metrics.rejoins_completed, 2, "{}", report.metrics);
}

#[test]
fn rejoin_waits_out_a_partition_then_completes() {
    // The amnesiac recovers inside a partition that cuts it off from every
    // source: probes die, the retry timer backs off, and once the
    // partition heals the rejoin completes.
    use arbitree_sim::Partition;
    let mut cfg = config(17);
    cfg.duration = SimDuration::from_millis(800);
    let mut sim = Simulation::new(cfg, proto());
    sim.schedule_amnesia_crash(SimTime::from_millis(40), SiteId::new(2));
    sim.schedule_partition(
        SimTime::from_millis(60),
        Partition::isolate_sites([SiteId::new(2)]),
    );
    sim.schedule_recover(SimTime::from_millis(80), SiteId::new(2));
    sim.schedule_partition(SimTime::from_millis(300), Partition::none());
    let report = sim.run();
    assert!(report.consistent, "violations: {}", report.violations);
    assert_eq!(report.metrics.sync_violations, 0);
    assert_eq!(report.metrics.rejoins_completed, 1, "{}", report.metrics);
    assert!(
        report.metrics.sync_retries > 0,
        "expected retries across the partition ({})",
        report.metrics
    );
}

#[test]
fn sharded_amnesia_rejoin_pulls_every_shard() {
    let mut cfg = config(19);
    cfg.objects = 32;
    cfg.shards = 4;
    let protocols: Vec<Box<dyn ReplicaControl>> = (0..4)
        .map(|_| Box::new(proto()) as Box<dyn ReplicaControl>)
        .collect();
    let mut sim = Simulation::from_shards(cfg, protocols);
    sim.schedule_amnesia_crash(SimTime::from_millis(50), SiteId::new(4));
    sim.schedule_recover(SimTime::from_millis(130), SiteId::new(4));
    let report = sim.run();
    assert!(report.consistent, "violations: {}", report.violations);
    assert_eq!(report.metrics.sync_violations, 0);
    assert_eq!(report.metrics.rejoins_completed, 1, "{}", report.metrics);
}
