//! Property tests for the striped lock manager.
//!
//! Striping is supposed to be a pure indexing layout: every observable of
//! [`LockManager`] — grant decisions, FIFO wake-ups, `holds`, queue depths
//! — must be identical whatever the stripe count. And the coordinator's
//! deadlock-freedom argument (locks acquired in globally ascending object
//! order, a total order across stripes) must hold for *random* multi-key
//! transactions, not just the shapes the simulator happens to produce.

use arbitree_sim::{LockManager, LockMode, ObjectId, OpId};
use proptest::prelude::*;
use std::collections::{BTreeSet, VecDeque};

/// One scripted lock-manager call.
#[derive(Debug, Clone)]
enum Call {
    Acquire { op: u64, obj: u32, write: bool },
    Release { op: u64, obj: u32 },
}

fn call_strategy() -> impl Strategy<Value = Call> {
    (any::<bool>(), 0u64..12, 0u32..24, any::<bool>()).prop_map(|(acquire, op, obj, write)| {
        if acquire {
            Call::Acquire { op, obj, write }
        } else {
            Call::Release { op, obj }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any call script observes the same behaviour from a 1-stripe and a
    /// many-stripe manager: same immediate grants, same wake-up lists,
    /// same holder/queue state after every step.
    #[test]
    fn striping_is_observably_equivalent_to_one_table(
        script in proptest::collection::vec(call_strategy(), 1..80),
        stripes in 2usize..9,
    ) {
        let flat = LockManager::new();
        let striped = LockManager::striped(stripes);
        // (op, obj) pairs with a live acquire (held or queued), so the
        // script never re-acquires a held lock (a caller contract).
        let mut live: BTreeSet<(u64, u32)> = BTreeSet::new();
        for call in script {
            match call {
                Call::Acquire { op, obj, write } => {
                    if live.contains(&(op, obj)) {
                        continue;
                    }
                    live.insert((op, obj));
                    let mode = if write { LockMode::Write } else { LockMode::Read };
                    let a = flat.acquire(OpId(op), ObjectId(obj), mode);
                    let b = striped.acquire(OpId(op), ObjectId(obj), mode);
                    prop_assert_eq!(a, b, "grant decision diverged on {:?}", (op, obj));
                }
                Call::Release { op, obj } => {
                    live.remove(&(op, obj));
                    let a = flat.release(OpId(op), ObjectId(obj));
                    let b = striped.release(OpId(op), ObjectId(obj));
                    prop_assert_eq!(a, b, "wake-up list diverged on {:?}", (op, obj));
                }
            }
            for op in 0u64..12 {
                for obj in 0u32..24 {
                    prop_assert_eq!(
                        flat.holds(OpId(op), ObjectId(obj)),
                        striped.holds(OpId(op), ObjectId(obj))
                    );
                }
            }
            for obj in 0u32..24 {
                prop_assert_eq!(flat.queue_len(ObjectId(obj)), striped.queue_len(ObjectId(obj)));
            }
            prop_assert_eq!(flat.locked_objects(), striped.locked_objects());
        }
    }

    /// Random multi-key transactions that acquire their locks in ascending
    /// object order (the coordinator's strict-2PL plan order) always all
    /// complete — no schedule deadlocks, whatever the stripe count.
    #[test]
    fn ordered_acquisition_never_deadlocks(
        plans in proptest::collection::vec(
            proptest::collection::vec((0u32..16, any::<bool>()), 1..6),
            2..10,
        ),
        stripes in 1usize..9,
    ) {
        // Dedup objects inside a plan (a transaction locks each object
        // once); keep the stronger mode when both were generated.
        struct Txn {
            plan: Vec<(ObjectId, LockMode)>,
            next: usize,
            done: bool,
        }
        let mut txns: Vec<Txn> = plans
            .iter()
            .map(|raw| {
                // Sort ascending (the coordinator's total acquisition
                // order) and collapse duplicate objects, keeping the
                // stronger mode.
                let mut sorted = raw.clone();
                sorted.sort_unstable();
                let mut plan: Vec<(ObjectId, LockMode)> = Vec::new();
                for (obj, write) in sorted {
                    let mode = if write { LockMode::Write } else { LockMode::Read };
                    match plan.last_mut() {
                        Some((last, m)) if *last == ObjectId(obj) => {
                            if mode == LockMode::Write {
                                *m = LockMode::Write;
                            }
                        }
                        _ => plan.push((ObjectId(obj), mode)),
                    }
                }
                Txn { plan, next: 0, done: false }
            })
            .collect();

        let lm = LockManager::striped(stripes);
        let mut work: VecDeque<usize> = (0..txns.len()).collect();
        let mut steps = 0usize;
        while let Some(i) = work.pop_front() {
            steps += 1;
            prop_assert!(steps <= 10_000, "lock scheduler failed to quiesce");
            if txns[i].done {
                continue;
            }
            loop {
                if txns[i].next == txns[i].plan.len() {
                    // Strict 2PL: all locks held -> commit, release
                    // everything, wake whoever was queued behind us.
                    txns[i].done = true;
                    let plan = txns[i].plan.clone();
                    for (obj, _) in plan {
                        for granted in lm.release(OpId(i as u64), obj) {
                            // arbitree-lint: allow(D004) — op ids are txn indices, all < txns.len()
                            work.push_back(granted.0 as usize);
                        }
                    }
                    break;
                }
                let (obj, mode) = txns[i].plan[txns[i].next];
                // A wake-up means the manager already granted this lock.
                if lm.holds(OpId(i as u64), obj) || lm.acquire(OpId(i as u64), obj, mode) {
                    txns[i].next += 1;
                } else {
                    break; // queued; a future release re-enqueues us
                }
            }
        }
        prop_assert!(
            txns.iter().all(|t| t.done),
            "stuck transactions: {:?}",
            txns.iter().enumerate().filter(|(_, t)| !t.done).map(|(i, _)| i).collect::<Vec<_>>()
        );
        prop_assert_eq!(lm.locked_objects(), 0, "locks leaked after quiescence");
    }
}

/// Deterministic per-thread workout: two ops per round contend on one
/// object (grant, queue, wake), cycling through the thread's own disjoint
/// object range. Returns every observable the script saw.
fn contention_script(lm: &LockManager, thread: u32) -> Vec<(bool, bool, Vec<OpId>)> {
    let base = thread * 32;
    let mut out = Vec::new();
    for round in 0..24u32 {
        let obj = ObjectId(base + round % 6);
        let op_a = OpId(u64::from(thread) * 1_000 + u64::from(round) * 2);
        let op_b = OpId(u64::from(thread) * 1_000 + u64::from(round) * 2 + 1);
        let mode_b = if round % 2 == 0 {
            LockMode::Read
        } else {
            LockMode::Write
        };
        let granted_a = lm.acquire(op_a, obj, LockMode::Write);
        let granted_b = lm.acquire(op_b, obj, mode_b);
        let woken = lm.release(op_a, obj);
        lm.release(op_b, obj);
        out.push((granted_a, granted_b, woken));
    }
    out
}

/// Real threads hammer a striped manager concurrently (each on a disjoint
/// object range, so the outcome is schedule-independent); every observable
/// must match a serial single-table replay of the same scripts.
#[test]
fn striped_manager_under_real_threads_matches_serial_replay() {
    const THREADS: u32 = 4;
    let striped = LockManager::striped(8);
    let threaded: Vec<Vec<(bool, bool, Vec<OpId>)>> = arbitree_race::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let striped = &striped;
                s.spawn(move |_| contention_script(striped, t))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("script thread panicked"))
            .collect()
    })
    .expect("stress scope");
    assert_eq!(striped.locked_objects(), 0, "locks leaked");

    let flat = LockManager::new();
    for (t, observed) in threaded.iter().enumerate() {
        let serial = contention_script(&flat, t as u32);
        assert_eq!(observed, &serial, "thread {t} diverged from serial replay");
    }
    assert_eq!(flat.locked_objects(), 0);
}
