//! Nemesis and retry-policy integration tests: scheduled partitions,
//! correlated level crashes, flapping, drop bursts — operations fail while
//! the fault holds, recover after it heals, and every execution stays
//! one-copy consistent. Also pins the retry machinery: exponential backoff
//! is deterministic per seed and strictly cheaper than fixed-interval
//! retry under sustained faults.

use arbitree_core::ArbitraryProtocol;
use arbitree_quorum::{steady_state_uptime, ReplicaControl, SiteId};
use arbitree_sim::{
    build_profile, cell_seed, run_chaos_campaign, ChaosCell, ExperimentCell, FailureSchedule,
    Nemesis, NemesisKind, NetworkConfig, ObjectDistribution, Partition, RetryPolicy, SimConfig,
    SimDuration, SimReport, SimTime, Simulation, TxnRequest,
};
use bytes::Bytes;

fn proto() -> ArbitraryProtocol {
    ArbitraryProtocol::parse("1-3-5").unwrap()
}

fn all_sites() -> Vec<SiteId> {
    (0..proto().tree().replica_count() as u32)
        .map(SiteId::new)
        .collect()
}

// ---------------------------------------------------------------------------
// Mid-run partitions

/// A partition formed mid-run makes operations fail while it holds; once it
/// heals, service resumes. The never-healed control shows the heal matters.
#[test]
fn partition_forms_and_heals_mid_run() {
    let run = |heal: bool| -> SimReport {
        let config = SimConfig {
            seed: 11,
            duration: SimDuration::from_millis(300),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config, proto());
        // Cut every site off from the clients (sites move to group 1,
        // clients stay in group 0): nothing can assemble a quorum.
        sim.schedule_partition(
            SimTime::from_millis(20),
            Partition::isolate_sites(all_sites()),
        );
        if heal {
            sim.schedule_partition(SimTime::from_millis(120), Partition::none());
        }
        sim.run()
    };

    let healed = run(true);
    let stuck = run(false);

    assert!(healed.consistent && stuck.consistent);
    // Ops failed while the partition held...
    assert!(healed.metrics.ops_failed() > 0, "{}", healed.metrics);
    assert!(healed.metrics.dropped_partition > 0);
    // ...and succeeded again after the heal: the healed run completes far
    // more work than the one that stays partitioned for 280 of 300 ms.
    assert!(
        healed.metrics.ops_ok() > 2 * stuck.metrics.ops_ok(),
        "healed {} vs stuck {}",
        healed.metrics.ops_ok(),
        stuck.metrics.ops_ok()
    );
}

/// Crashing one entire physical level annihilates the read quorums (a read
/// needs one member of *every* physical level), while a fault-free control
/// run never fails an operation.
#[test]
fn level_crash_blocks_operations_until_recovery() {
    let run = |nemesis: Nemesis| -> SimReport {
        let config = SimConfig {
            seed: 23,
            duration: SimDuration::from_millis(300),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config, proto());
        sim.schedule_nemesis(&nemesis);
        sim.run()
    };

    let p = proto();
    let level = p.tree().physical_levels()[0];
    let victims = p.tree().level_sites(level).to_vec();
    let hit = run(Nemesis::level_crash(
        &victims,
        SimTime::from_millis(50),
        SimDuration::from_millis(100),
    ));
    let control = run(Nemesis::none());

    assert!(hit.consistent && control.consistent);
    assert_eq!(control.metrics.ops_failed(), 0, "{}", control.metrics);
    assert!(hit.metrics.ops_failed() > 0, "{}", hit.metrics);
    // Recovery restored service: plenty of operations still succeeded.
    assert!(hit.metrics.ops_ok() > control.metrics.ops_ok() / 2);
}

/// A flapping site keeps the coordinators' suspicion sets churning: entries
/// are raised on timeouts and cleared again by the reprobe path. The tree
/// is a single physical level, so the write quorum *must* include the
/// flapper — suspecting it forces the quorum-assembly failure that
/// triggers the clear.
#[test]
fn flapping_churns_suspicions() {
    let config = SimConfig {
        seed: 31,
        duration: SimDuration::from_millis(300),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(config, ArbitraryProtocol::parse("1-3").unwrap());
    sim.schedule_nemesis(&Nemesis::flapping(
        SiteId::new(0),
        SimTime::from_millis(20),
        SimDuration::from_millis(10),
        SimDuration::from_millis(10),
        SimTime::from_millis(280),
    ));
    let report = sim.run();
    assert!(report.consistent);
    assert!(report.metrics.suspicions_raised > 0, "{}", report.metrics);
    assert!(report.metrics.suspicions_cleared > 0, "{}", report.metrics);
}

// ---------------------------------------------------------------------------
// Retry policies

/// Crash every site after the prepare acks land but before the commit
/// messages deliver: phase 2 must not give up, and once the participants
/// recover the transaction converges to commit.
fn commit_gather_run(retry: RetryPolicy) -> SimReport {
    let config = SimConfig {
        seed: 5,
        clients: 1,
        auto_workload: false,
        retry,
        // Zero-jitter network: every hop is exactly 500 µs, so the 2PC
        // timeline below is exact.
        network: NetworkConfig {
            min_latency: SimDuration::from_micros(500),
            max_latency: SimDuration::from_micros(500),
            drop_probability: 0.0,
        },
        duration: SimDuration::from_millis(60),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(config, proto());
    sim.schedule_transaction(
        SimTime::ZERO,
        arbitree_sim::ClientId(0),
        TxnRequest::write(arbitree_sim::ObjectId(0), Bytes::from_static(b"v")),
    );
    // Timeline: read round 0→1000, prepare 1000→2000 (acks back at 2000),
    // commit sent at 2000, delivered at 2500. Crash inside (2000, 2500):
    // every prepared participant is down when the commit arrives.
    for s in all_sites() {
        sim.schedule_crash(SimTime::from_micros(2300), s);
    }
    for s in all_sites() {
        sim.schedule_recover(SimTime::from_millis(19), s);
    }
    sim.run()
}

#[test]
fn commit_gather_converges_after_crash_recovery() {
    let report = commit_gather_run(RetryPolicy::Fixed);
    assert!(report.consistent);
    assert_eq!(report.metrics.txns_ok, 1, "{}", report.metrics);
    assert_eq!(report.ops_incomplete, 0);
    // Phase 2 kept re-sending across the 17 ms outage (3 ms timeout).
    assert!(
        report.metrics.retries_commit >= 4,
        "retries_commit = {}",
        report.metrics.retries_commit
    );
}

#[test]
fn backoff_reduces_commit_resends() {
    let fixed = commit_gather_run(RetryPolicy::Fixed);
    let exp = commit_gather_run(RetryPolicy::Exponential {
        cap: SimDuration::from_millis(24),
        jitter: 0.0,
    });
    // Both converge to the same committed outcome...
    for r in [&fixed, &exp] {
        assert!(r.consistent);
        assert_eq!(r.metrics.txns_ok, 1);
        assert_eq!(r.ops_incomplete, 0);
    }
    // ...but backoff spaces the doomed re-sends out (3, 6, 12 ms instead
    // of a 3 ms drumbeat), so it spends strictly fewer retries.
    assert!(
        exp.metrics.retries_commit < fixed.metrics.retries_commit,
        "exponential {} vs fixed {}",
        exp.metrics.retries_commit,
        fixed.metrics.retries_commit
    );
    assert!(exp.metrics.retries_commit >= 1);
}

/// Under a sustained 50 % message-drop window, exponential backoff fires
/// fewer timeouts (and sends fewer messages) than fixed-interval retry.
#[test]
fn backoff_is_cheaper_under_drop_burst() {
    let run = |retry: RetryPolicy| -> SimReport {
        let config = SimConfig {
            seed: 41,
            retry,
            max_attempts: 8,
            duration: SimDuration::from_millis(300),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config, proto());
        let burst = Nemesis::drop_burst(
            NetworkConfig::default(),
            0.5,
            SimTime::from_millis(20),
            SimDuration::from_millis(200),
        );
        sim.schedule_nemesis(&burst);
        sim.run()
    };

    let fixed = run(RetryPolicy::Fixed);
    let exp = run(RetryPolicy::Exponential {
        cap: SimDuration::from_millis(24),
        jitter: 0.25,
    });
    assert!(fixed.consistent && exp.consistent);
    assert!(
        exp.metrics.timeouts_fired < fixed.metrics.timeouts_fired,
        "exponential {} vs fixed {} timeouts",
        exp.metrics.timeouts_fired,
        fixed.metrics.timeouts_fired
    );
}

/// A chaos run — churn, nemesis, exponential backoff with jitter — is a
/// pure function of its seed: same seed, byte-identical report; different
/// seed, different execution.
#[test]
fn chaos_runs_are_deterministic_per_seed() {
    let run = |seed: u64| -> SimReport {
        let config = SimConfig {
            seed,
            retry: RetryPolicy::Exponential {
                cap: SimDuration::from_millis(24),
                jitter: 0.5,
            },
            duration: SimDuration::from_millis(200),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config, proto());
        let nemesis = build_profile(
            NemesisKind::PartitionCycles,
            &[vec![SiteId::new(1), SiteId::new(2), SiteId::new(3)]],
            NetworkConfig::default(),
            SimDuration::from_millis(200),
            seed,
        );
        sim.schedule_nemesis(&nemesis);
        sim.run()
    };

    let a = run(77);
    let b = run(77);
    assert_eq!(a, b, "same seed must replay identically");
    let c = run(78);
    assert_ne!(
        a.metrics.messages_sent, c.metrics.messages_sent,
        "different seeds should diverge"
    );
}

// ---------------------------------------------------------------------------
// Anti-entropy chaos cells: long partition + heal, amnesia cold start

/// The long-partition profile: one level is cut off for half the run and
/// healed late. Operations fail while it holds, service resumes after the
/// heal, and the whole execution stays one-copy consistent with no reply
/// ever served by a non-`Serving` site.
#[test]
fn long_partition_heals_and_recovers_service() {
    for seed in 0..3u64 {
        let config = SimConfig {
            seed: 900 + seed,
            duration: SimDuration::from_millis(400),
            ..SimConfig::default()
        };
        let p = proto();
        let levels: Vec<Vec<_>> = p
            .tree()
            .physical_levels()
            .iter()
            .map(|&k| p.tree().level_sites(k).to_vec())
            .collect();
        let nemesis = build_profile(
            NemesisKind::LongPartition,
            &levels,
            NetworkConfig::default(),
            SimDuration::from_millis(400),
            seed,
        );
        let mut sim = Simulation::new(config, proto());
        sim.schedule_nemesis(&nemesis);
        let report = sim.run();
        assert!(
            report.consistent,
            "seed {seed}: {} violations",
            report.violations
        );
        assert_eq!(report.metrics.sync_violations, 0, "seed {seed}");
        assert!(
            report.metrics.dropped_partition > 0,
            "seed {seed}: partition never bit ({})",
            report.metrics
        );
        assert!(report.metrics.ops_ok() > 0, "seed {seed}");
    }
}

/// The amnesia-cold-start profile under live Zipfian traffic: a site loses
/// its storage mid-run, rejoins through staged anti-entropy while hot-key
/// writes keep flowing, completes the rejoin, and serves again — zero 1SR
/// violations, zero replies from a non-`Serving` site, and the `Syncing`
/// health gate visibly exercised across the cells.
#[test]
fn amnesia_cold_start_under_zipfian_traffic() {
    let mut total_rejoins = 0;
    let mut total_refused = 0;
    for seed in 0..4u64 {
        let config = SimConfig {
            seed: 1300 + seed,
            objects: 8,
            object_distribution: ObjectDistribution::Zipfian { exponent: 1.0 },
            read_fraction: 0.4,
            duration: SimDuration::from_millis(500),
            ..SimConfig::default()
        };
        let p = proto();
        let levels: Vec<Vec<_>> = p
            .tree()
            .physical_levels()
            .iter()
            .map(|&k| p.tree().level_sites(k).to_vec())
            .collect();
        let nemesis = build_profile(
            NemesisKind::AmnesiaColdStart,
            &levels,
            NetworkConfig::default(),
            SimDuration::from_millis(500),
            seed,
        );
        let mut sim = Simulation::new(config, proto());
        sim.schedule_nemesis(&nemesis);
        let report = sim.run();
        assert!(
            report.consistent,
            "seed {seed}: {} violations",
            report.violations
        );
        assert_eq!(report.metrics.sync_violations, 0, "seed {seed}");
        assert_eq!(
            report.metrics.rejoins_completed, 1,
            "seed {seed}: {}",
            report.metrics
        );
        assert!(report.metrics.sync_keys_transferred > 0, "seed {seed}");
        total_rejoins += report.metrics.rejoins_completed;
        total_refused += report.metrics.messages_refused_syncing;
    }
    assert!(total_rejoins >= 4);
    // At least one cell caught in-flight quorum traffic against the
    // Syncing health gate (routed around, not served).
    assert!(
        total_refused > 0,
        "no cell ever exercised the Syncing refusal gate"
    );
}

// ---------------------------------------------------------------------------
// Replay stability across the event-engine swap
//
// The calendar-queue/slab engine must be *semantically invisible*: the same
// seeds must produce byte-identical executions before and after the swap.
// These tests pin FNV-1a hashes of full deterministic transcripts — a
// 24-cell chaos campaign, the throughput sweep's smoke shape, and the
// repair sweep's smoke shape — captured on the pre-swap `BTreeMap` queue.
// Any divergence in event order, payload contents, or metric accounting
// moves the hash.

/// FNV-1a 64 over a transcript string (the workspace vendors no external
/// hash crates; `DefaultHasher` is not stable across toolchains).
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic columns of one chaos/throughput cell: every integer
/// metric plus the consistency verdict (wall-clock excluded by
/// construction — `SimMetrics` carries only simulated quantities).
fn report_transcript(label: &str, report: &SimReport) -> String {
    format!(
        "{label}|{}|violations={}|consistent={}|incomplete={}\n",
        report.metrics, report.violations, report.consistent, report.ops_incomplete
    )
}

/// A 24-cell chaos campaign — 3 seeds × (churn baseline + 7 nemesis
/// profiles) — mirroring the `chaos` bin's cell construction at a reduced
/// per-cell duration, hashed into one pinned fingerprint.
#[test]
fn chaos_campaign_is_pinned_across_engine_swaps() {
    const SPEC: &str = "1-3-5";
    let duration = SimDuration::from_millis(400);
    let mttf = SimDuration::from_millis(240);
    let mttr = SimDuration::from_millis(60);
    let p = steady_state_uptime(mttf.as_micros() as f64, mttr.as_micros() as f64);
    let probe = ArbitraryProtocol::parse(SPEC).unwrap();
    let predicted_read = probe.read_availability(p);
    let predicted_write = probe.write_availability(p);
    let levels: Vec<Vec<_>> = probe
        .tree()
        .physical_levels()
        .iter()
        .map(|&k| probe.tree().level_sites(k).to_vec())
        .collect();
    let n_sites = probe.tree().replica_count();

    let mut cells = Vec::new();
    for seed_idx in 0..3u64 {
        for (profile_idx, profile) in [None]
            .into_iter()
            .chain(NemesisKind::ALL.map(Some))
            .enumerate()
        {
            let seed = cell_seed(0xC4A0_5EED, seed_idx * 64 + profile_idx as u64);
            let config = SimConfig {
                seed,
                duration,
                max_attempts: 3,
                think_time: SimDuration::from_millis(40),
                retry: RetryPolicy::Exponential {
                    cap: SimDuration::from_millis(24),
                    jitter: 0.25,
                },
                ..SimConfig::default()
            };
            let churn = FailureSchedule::random(n_sites, duration, mttf, mttr, seed ^ 0xF417);
            let name = profile.map_or("churn", NemesisKind::name);
            let mut cell = ExperimentCell::new(
                format!("{name} s{seed_idx}"),
                config,
                ArbitraryProtocol::parse(SPEC).unwrap(),
            )
            .with_failures(churn);
            if let Some(kind) = profile {
                let nemesis =
                    build_profile(kind, &levels, cell.config.network, duration, seed ^ 0xBAD);
                cell = cell.with_nemesis(nemesis);
            }
            cells.push(ChaosCell {
                cell,
                predicted_read,
                predicted_write,
            });
        }
    }
    assert_eq!(cells.len(), 24);

    let outcomes = run_chaos_campaign(cells);
    let mut transcript = String::new();
    for o in &outcomes {
        transcript.push_str(&report_transcript(&o.label, &o.report));
        assert!(o.report.consistent, "{}: violations", o.label);
        assert_eq!(o.report.metrics.sync_violations, 0, "{}", o.label);
    }
    assert_eq!(
        fnv1a64(&transcript),
        PINNED_CHAOS_CAMPAIGN,
        "24-cell chaos campaign diverged from the pre-swap queue:\n{transcript}"
    );
}

/// The throughput sweep's smoke shape — shards × distribution × batching
/// over a sharded keyspace — run through `Simulation::from_shards` and
/// hashed. Pins the batching/outbox path (coalesced envelopes, per-
/// destination buffers) across the engine swap.
#[test]
fn throughput_smoke_table_is_pinned_across_engine_swaps() {
    const SPEC: &str = "1-3-5";
    let dists: [(&str, ObjectDistribution); 2] = [
        ("uniform", ObjectDistribution::Uniform),
        ("zipfian", ObjectDistribution::Zipfian { exponent: 1.0 }),
    ];
    let mut cells = Vec::new();
    let mut idx = 0u64;
    for shards in [1usize, 4, 16] {
        for (dist_name, dist) in dists {
            for batching in [false, true] {
                let seed = cell_seed(0x7B40_0B47, idx);
                idx += 1;
                cells.push((shards, dist_name, batching, seed, dist));
            }
        }
    }
    let outcomes =
        arbitree_sim::parallel_map(cells, |(shards, dist_name, batching, seed, dist)| {
            let config = SimConfig {
                seed,
                clients: 8,
                objects: 65_536,
                duration: SimDuration::from_millis(30),
                think_time: SimDuration::from_micros(300),
                read_fraction: 0.5,
                max_txn_ops: 16,
                shards,
                batching,
                object_distribution: dist,
                ..SimConfig::default()
            };
            let protocols: Vec<Box<dyn ReplicaControl>> = (0..shards)
                .map(|_| {
                    Box::new(ArbitraryProtocol::parse(SPEC).unwrap()) as Box<dyn ReplicaControl>
                })
                .collect();
            let mut sim = Simulation::from_shards(config, protocols);
            let report = sim.run();
            (format!("s={shards} {dist_name} batch={batching}"), report)
        });
    let mut transcript = String::new();
    for (label, report) in &outcomes {
        assert!(report.consistent, "{label}");
        transcript.push_str(&report_transcript(label, report));
    }
    assert_eq!(
        fnv1a64(&transcript),
        PINNED_THROUGHPUT_SMOKE,
        "throughput smoke table diverged from the pre-swap queue:\n{transcript}"
    );
}

/// The repair sweep's smoke shape — anti-entropy reconciliation message
/// counts at divergence d ∈ {2^4 … 2^8} over a 2^14-key strided store.
/// No simulator events run here; pinning it guards the `RangeFill`
/// payload path's data (`arbitree-sync` digests) against accidental
/// coupling to the engine rework.
#[test]
fn repair_smoke_table_is_pinned_across_engine_swaps() {
    use arbitree_sync::{item_hash, respond, HTree, Response, Session};
    let n: u64 = 1 << 14;
    let stride = (1u64 << 32) / n;
    let mut src = HTree::new();
    for i in 0..n {
        // arbitree-lint: allow(D004) — i * stride < 2^32 for i < n
        let key = (i * stride) as u32;
        src.insert(key, item_hash(key, 1, 0, &key.to_le_bytes()));
    }
    let mut transcript = String::new();
    for e in 4..=8u32 {
        let d = 1u64 << e;
        let mut dst = src.clone();
        let gap = n / d;
        for j in 0..d {
            // arbitree-lint: allow(D004) — store keys fit u32 by construction
            let key = ((j * gap + gap / 2) * stride) as u32;
            assert!(dst.remove(key));
        }
        let mut session = Session::new();
        let (mut messages, mut rounds, mut filled) = (0u64, 0u64, 0u64);
        while !session.is_done() {
            let reqs = session.take_requests(&dst, usize::MAX);
            assert!(!reqs.is_empty());
            rounds += 1;
            for (range, digest) in reqs {
                messages += 2;
                let resp = respond(&src, range, digest);
                if let Response::Fill(keys) = &resp {
                    for &k in keys {
                        if dst.item(k) != src.item(k) {
                            filled += 1;
                            dst.insert(k, src.item(k).unwrap());
                        }
                    }
                }
                assert!(session.on_response(&dst, range, &resp));
            }
        }
        assert!(dst == src);
        transcript.push_str(&format!(
            "d={d}|msgs={messages}|rounds={rounds}|keys={filled}\n"
        ));
    }
    assert_eq!(
        fnv1a64(&transcript),
        PINNED_REPAIR_SMOKE,
        "repair smoke table diverged:\n{transcript}"
    );
}

/// Pre-swap fingerprints, captured on the `BTreeMap`-backed queue before
/// the calendar-queue engine landed. The engine swap must not move them.
const PINNED_CHAOS_CAMPAIGN: u64 = 6150756938650259650;
const PINNED_THROUGHPUT_SMOKE: u64 = 5468455340288058325;
const PINNED_REPAIR_SMOKE: u64 = 12736085341905263238;

/// Amnesia cold start layered over uncorrelated churn (the chaos-campaign
/// composition): still consistent, still no service from Syncing sites.
#[test]
fn amnesia_cold_start_with_background_churn() {
    use arbitree_sim::FailureSchedule;
    for seed in 0..3u64 {
        let duration = SimDuration::from_millis(500);
        let config = SimConfig {
            seed: 1700 + seed,
            duration,
            ..SimConfig::default()
        };
        let churn = FailureSchedule::random(
            8,
            duration,
            SimDuration::from_millis(240),
            SimDuration::from_millis(60),
            seed ^ 0xF417,
        );
        let mut sim = Simulation::new(config, proto());
        churn.apply(&mut sim);
        sim.schedule_nemesis(&Nemesis::amnesia_cold_start(
            SiteId::new(4),
            SimTime::from_millis(100),
            SimDuration::from_millis(80),
        ));
        let report = sim.run();
        assert!(
            report.consistent,
            "seed {seed}: {} violations",
            report.violations
        );
        assert_eq!(report.metrics.sync_violations, 0, "seed {seed}");
    }
}
