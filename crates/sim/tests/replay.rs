//! Byte-level replay regression: a chaos run is a pure function of its
//! seed. Two runs with the same seed must produce **byte-identical**
//! serialized state — not just equal aggregate counters, but the full
//! metrics (including per-site quorum-hit maps, whose iteration order is
//! exactly what `DetMap` pins down) and the complete operation history,
//! event for event, timestamp for timestamp.
//!
//! This is the regression net for the determinism work: if anyone
//! reintroduces a raw `HashMap` into a send loop, an unseeded RNG, or a
//! wall-clock read, the serialized transcripts diverge and this test
//! fails even while every functional assertion still passes.

use arbitree_core::ArbitraryProtocol;
use arbitree_quorum::SiteId;
use arbitree_sim::{
    build_profile, NemesisKind, NetworkConfig, RetryPolicy, SeededScheduler, SimConfig,
    SimDuration, SimReport, Simulation,
};
use proptest::prelude::*;

/// A full-pressure chaos run: partitions cycling over a logical level,
/// exponential backoff with jitter (exercising the RNG on every retry),
/// and history recording on so the transcript captures every operation.
fn chaos_run(seed: u64) -> SimReport {
    let config = SimConfig {
        seed,
        retry: RetryPolicy::Exponential {
            cap: SimDuration::from_millis(24),
            jitter: 0.5,
        },
        duration: SimDuration::from_millis(250),
        record_history: true,
        ..SimConfig::default()
    };
    let proto = ArbitraryProtocol::parse("1-3-5").expect("valid spec");
    let mut sim = Simulation::new(config, proto);
    let nemesis = build_profile(
        NemesisKind::PartitionCycles,
        &[vec![SiteId::new(1), SiteId::new(2), SiteId::new(3)]],
        NetworkConfig::default(),
        SimDuration::from_millis(250),
        seed,
    );
    sim.schedule_nemesis(&nemesis);
    sim.run()
}

/// Serializes everything observable about a run into one byte string.
fn transcript(report: &SimReport) -> String {
    format!(
        "metrics={:#?}\nhistory={:#?}\nviolations={} consistent={} incomplete={} \
         reads_checked={} writes_recorded={}",
        report.metrics,
        report.history,
        report.violations,
        report.consistent,
        report.ops_incomplete,
        report.reads_checked,
        report.writes_recorded,
    )
}

#[test]
fn same_seed_replays_byte_identically() {
    let a = transcript(&chaos_run(77));
    let b = transcript(&chaos_run(77));
    assert!(
        !a.is_empty() && a.contains("history"),
        "transcript should capture history"
    );
    assert_eq!(
        a.as_bytes(),
        b.as_bytes(),
        "same-seed chaos runs must serialize byte-for-byte identically"
    );
}

/// The scheduler seam must be invisible on the default path:
/// `run_with(&mut SeededScheduler)` is the policy `run()` always had, so
/// over random small trees, seeds and network shapes the two must produce
/// byte-identical transcripts — not merely equivalent reports.
mod scheduler_seam {
    use super::*;

    const SPECS: [&str; 6] = ["1-3", "1-5", "1-2-3", "1-3-5", "p:1-3", "p:1-2-4"];

    fn run_pair(spec: &str, seed: u64, drop: f64, jitter: bool) -> (String, String) {
        let config = |s| SimConfig {
            seed: s,
            clients: 2,
            objects: 2,
            retry: if jitter {
                RetryPolicy::Exponential {
                    cap: SimDuration::from_millis(24),
                    jitter: 0.5,
                }
            } else {
                RetryPolicy::Fixed
            },
            network: NetworkConfig {
                drop_probability: drop,
                ..NetworkConfig::default()
            },
            duration: SimDuration::from_millis(60),
            record_history: true,
            ..SimConfig::default()
        };
        let proto = || ArbitraryProtocol::parse(spec).expect("valid spec");
        let baseline = Simulation::new(config(seed), proto()).run();
        let mut sim = Simulation::new(config(seed), proto());
        let seamed = sim.run_with(&mut SeededScheduler);
        (transcript(&baseline), transcript(&seamed))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn seeded_scheduler_is_byte_identical_to_run(
            spec_idx in 0usize..SPECS.len(),
            seed in 0u64..10_000,
            drop in 0.0f64..0.1,
            jitter in any::<bool>(),
        ) {
            let (baseline, seamed) = run_pair(SPECS[spec_idx], seed, drop, jitter);
            prop_assert!(
                baseline.contains("history"),
                "transcript should capture history"
            );
            prop_assert_eq!(
                baseline,
                seamed,
                "scheduler seam changed behavior on the default path: spec {} seed {}",
                SPECS[spec_idx],
                seed
            );
        }
    }
}

/// The calendar queue must be observationally identical to the reference
/// `BTreeQueue` it replaced — same `pop` order, same `keys` enumeration,
/// same `take`-by-arbitrary-key results — over randomized interleavings of
/// schedules (near, far, and colliding timestamps), pops, and takes. This
/// is the ordering oracle for the event-engine swap: the interleavings are
/// chosen to push events through every tier (bucket hit, overflow insert,
/// window rotation, slab recycling).
mod queue_equivalence {
    use super::*;
    use arbitree_sim::{BTreeQueue, ClientId, Event, EventQueue, SimTime};

    /// One step of the randomized driver.
    #[derive(Debug, Clone)]
    enum Op {
        /// Schedule a tagged event at a timestamp (µs).
        Schedule(u64, u32),
        /// Pop the earliest event from both queues.
        Pop,
        /// Take the pending key at index `i % len` of the enumeration.
        Take(usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Weighted mix (the vendored proptest has no `prop_oneof!`):
        // 3/9 near schedules — inside (and just past) the initial window,
        // a tight range so same-µs collisions exercise the FIFO seq
        // tie-break; 2/9 far schedules — deep into the overflow tier, far
        // enough that draining crosses several window rotations; 2/9 pops;
        // 2/9 takes of an arbitrary pending key.
        (
            0u8..9,
            0u64..6_000,
            0u64..4_000_000,
            any::<u32>(),
            any::<usize>(),
        )
            .prop_map(|(sel, near, far, tag, idx)| match sel {
                0..=2 => Op::Schedule(near, tag),
                3..=4 => Op::Schedule(far, tag),
                5..=6 => Op::Pop,
                _ => Op::Take(idx),
            })
    }

    /// Drains both queues to the end, checking order at every step.
    fn drain_and_compare(cal: &mut EventQueue, btree: &mut BTreeQueue) {
        loop {
            let a = cal.pop();
            let b = btree.pop();
            assert_eq!(a, b, "drain order diverged");
            if a.is_none() {
                break;
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn calendar_queue_matches_reference_btree(
            ops in proptest::collection::vec(op_strategy(), 1..250),
        ) {
            let mut cal = EventQueue::new();
            let mut btree = BTreeQueue::new();
            for op in &ops {
                match *op {
                    Op::Schedule(t, tag) => {
                        let at = SimTime::from_micros(t);
                        cal.schedule(at, Event::ClientTick(ClientId(tag)));
                        btree.schedule(at, Event::ClientTick(ClientId(tag)));
                    }
                    Op::Pop => {
                        prop_assert_eq!(cal.pop(), btree.pop());
                    }
                    Op::Take(i) => {
                        let keys: Vec<_> = btree.keys().collect();
                        if keys.is_empty() {
                            continue;
                        }
                        let key = keys[i % keys.len()];
                        prop_assert_eq!(cal.take(key), btree.take(key));
                        // A taken key is gone from both.
                        prop_assert!(cal.get(key).is_none());
                        prop_assert!(cal.take(key).is_none());
                    }
                }
                // Full observational equality after every step.
                prop_assert_eq!(cal.len(), btree.len());
                prop_assert_eq!(cal.is_empty(), btree.is_empty());
                prop_assert_eq!(cal.next_key(), btree.next_key());
                prop_assert_eq!(cal.peek_time(), btree.peek_time());
                let ck: Vec<_> = cal.keys().collect();
                let bk: Vec<_> = btree.keys().collect();
                prop_assert_eq!(&ck, &bk, "keys() enumeration diverged");
                for k in &ck {
                    prop_assert_eq!(cal.get(*k), btree.get(*k));
                }
                let ci: Vec<_> = cal.iter().collect();
                let bi: Vec<_> = btree.iter().collect();
                prop_assert_eq!(ci, bi, "iter() enumeration diverged");
            }
            drain_and_compare(&mut cal, &mut btree);
        }
    }
}

#[test]
fn different_seeds_diverge() {
    let a = transcript(&chaos_run(77));
    let c = transcript(&chaos_run(78));
    assert_ne!(
        a.as_bytes(),
        c.as_bytes(),
        "different seeds should produce different executions"
    );
}
