//! Byte-level replay regression: a chaos run is a pure function of its
//! seed. Two runs with the same seed must produce **byte-identical**
//! serialized state — not just equal aggregate counters, but the full
//! metrics (including per-site quorum-hit maps, whose iteration order is
//! exactly what `DetMap` pins down) and the complete operation history,
//! event for event, timestamp for timestamp.
//!
//! This is the regression net for the determinism work: if anyone
//! reintroduces a raw `HashMap` into a send loop, an unseeded RNG, or a
//! wall-clock read, the serialized transcripts diverge and this test
//! fails even while every functional assertion still passes.

use arbitree_core::ArbitraryProtocol;
use arbitree_quorum::SiteId;
use arbitree_sim::{
    build_profile, NemesisKind, NetworkConfig, RetryPolicy, SimConfig, SimDuration, SimReport,
    Simulation,
};

/// A full-pressure chaos run: partitions cycling over a logical level,
/// exponential backoff with jitter (exercising the RNG on every retry),
/// and history recording on so the transcript captures every operation.
fn chaos_run(seed: u64) -> SimReport {
    let config = SimConfig {
        seed,
        retry: RetryPolicy::Exponential {
            cap: SimDuration::from_millis(24),
            jitter: 0.5,
        },
        duration: SimDuration::from_millis(250),
        record_history: true,
        ..SimConfig::default()
    };
    let proto = ArbitraryProtocol::parse("1-3-5").expect("valid spec");
    let mut sim = Simulation::new(config, proto);
    let nemesis = build_profile(
        NemesisKind::PartitionCycles,
        &[vec![SiteId::new(1), SiteId::new(2), SiteId::new(3)]],
        NetworkConfig::default(),
        SimDuration::from_millis(250),
        seed,
    );
    sim.schedule_nemesis(&nemesis);
    sim.run()
}

/// Serializes everything observable about a run into one byte string.
fn transcript(report: &SimReport) -> String {
    format!(
        "metrics={:#?}\nhistory={:#?}\nviolations={} consistent={} incomplete={} \
         reads_checked={} writes_recorded={}",
        report.metrics,
        report.history,
        report.violations,
        report.consistent,
        report.ops_incomplete,
        report.reads_checked,
        report.writes_recorded,
    )
}

#[test]
fn same_seed_replays_byte_identically() {
    let a = transcript(&chaos_run(77));
    let b = transcript(&chaos_run(77));
    assert!(
        !a.is_empty() && a.contains("history"),
        "transcript should capture history"
    );
    assert_eq!(
        a.as_bytes(),
        b.as_bytes(),
        "same-seed chaos runs must serialize byte-for-byte identically"
    );
}

#[test]
fn different_seeds_diverge() {
    let a = transcript(&chaos_run(77));
    let c = transcript(&chaos_run(78));
    assert_ne!(
        a.as_bytes(),
        c.as_bytes(),
        "different seeds should produce different executions"
    );
}
