//! Byte-level replay regression: a chaos run is a pure function of its
//! seed. Two runs with the same seed must produce **byte-identical**
//! serialized state — not just equal aggregate counters, but the full
//! metrics (including per-site quorum-hit maps, whose iteration order is
//! exactly what `DetMap` pins down) and the complete operation history,
//! event for event, timestamp for timestamp.
//!
//! This is the regression net for the determinism work: if anyone
//! reintroduces a raw `HashMap` into a send loop, an unseeded RNG, or a
//! wall-clock read, the serialized transcripts diverge and this test
//! fails even while every functional assertion still passes.

use arbitree_core::ArbitraryProtocol;
use arbitree_quorum::SiteId;
use arbitree_sim::{
    build_profile, NemesisKind, NetworkConfig, RetryPolicy, SeededScheduler, SimConfig,
    SimDuration, SimReport, Simulation,
};
use proptest::prelude::*;

/// A full-pressure chaos run: partitions cycling over a logical level,
/// exponential backoff with jitter (exercising the RNG on every retry),
/// and history recording on so the transcript captures every operation.
fn chaos_run(seed: u64) -> SimReport {
    let config = SimConfig {
        seed,
        retry: RetryPolicy::Exponential {
            cap: SimDuration::from_millis(24),
            jitter: 0.5,
        },
        duration: SimDuration::from_millis(250),
        record_history: true,
        ..SimConfig::default()
    };
    let proto = ArbitraryProtocol::parse("1-3-5").expect("valid spec");
    let mut sim = Simulation::new(config, proto);
    let nemesis = build_profile(
        NemesisKind::PartitionCycles,
        &[vec![SiteId::new(1), SiteId::new(2), SiteId::new(3)]],
        NetworkConfig::default(),
        SimDuration::from_millis(250),
        seed,
    );
    sim.schedule_nemesis(&nemesis);
    sim.run()
}

/// Serializes everything observable about a run into one byte string.
fn transcript(report: &SimReport) -> String {
    format!(
        "metrics={:#?}\nhistory={:#?}\nviolations={} consistent={} incomplete={} \
         reads_checked={} writes_recorded={}",
        report.metrics,
        report.history,
        report.violations,
        report.consistent,
        report.ops_incomplete,
        report.reads_checked,
        report.writes_recorded,
    )
}

#[test]
fn same_seed_replays_byte_identically() {
    let a = transcript(&chaos_run(77));
    let b = transcript(&chaos_run(77));
    assert!(
        !a.is_empty() && a.contains("history"),
        "transcript should capture history"
    );
    assert_eq!(
        a.as_bytes(),
        b.as_bytes(),
        "same-seed chaos runs must serialize byte-for-byte identically"
    );
}

/// The scheduler seam must be invisible on the default path:
/// `run_with(&mut SeededScheduler)` is the policy `run()` always had, so
/// over random small trees, seeds and network shapes the two must produce
/// byte-identical transcripts — not merely equivalent reports.
mod scheduler_seam {
    use super::*;

    const SPECS: [&str; 6] = ["1-3", "1-5", "1-2-3", "1-3-5", "p:1-3", "p:1-2-4"];

    fn run_pair(spec: &str, seed: u64, drop: f64, jitter: bool) -> (String, String) {
        let config = |s| SimConfig {
            seed: s,
            clients: 2,
            objects: 2,
            retry: if jitter {
                RetryPolicy::Exponential {
                    cap: SimDuration::from_millis(24),
                    jitter: 0.5,
                }
            } else {
                RetryPolicy::Fixed
            },
            network: NetworkConfig {
                drop_probability: drop,
                ..NetworkConfig::default()
            },
            duration: SimDuration::from_millis(60),
            record_history: true,
            ..SimConfig::default()
        };
        let proto = || ArbitraryProtocol::parse(spec).expect("valid spec");
        let baseline = Simulation::new(config(seed), proto()).run();
        let mut sim = Simulation::new(config(seed), proto());
        let seamed = sim.run_with(&mut SeededScheduler);
        (transcript(&baseline), transcript(&seamed))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn seeded_scheduler_is_byte_identical_to_run(
            spec_idx in 0usize..SPECS.len(),
            seed in 0u64..10_000,
            drop in 0.0f64..0.1,
            jitter in any::<bool>(),
        ) {
            let (baseline, seamed) = run_pair(SPECS[spec_idx], seed, drop, jitter);
            prop_assert!(
                baseline.contains("history"),
                "transcript should capture history"
            );
            prop_assert_eq!(
                baseline,
                seamed,
                "scheduler seam changed behavior on the default path: spec {} seed {}",
                SPECS[spec_idx],
                seed
            );
        }
    }
}

#[test]
fn different_seeds_diverge() {
    let a = transcript(&chaos_run(77));
    let c = transcript(&chaos_run(78));
    assert_ne!(
        a.as_bytes(),
        c.as_bytes(),
        "different seeds should produce different executions"
    );
}
