//! Tests of the scripted-transaction API.

use arbitree_core::ArbitraryProtocol;
use arbitree_sim::{ClientId, ObjectId, SimConfig, SimDuration, SimTime, Simulation, TxnRequest};
use bytes::Bytes;

fn scripted_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        clients: 2,
        objects: 4,
        auto_workload: false,
        record_history: true,
        duration: SimDuration::from_millis(300),
        ..SimConfig::default()
    }
}

fn proto() -> ArbitraryProtocol {
    ArbitraryProtocol::parse("1-3-5").unwrap()
}

#[test]
fn scripted_writes_then_read_returns_last_value() {
    let mut sim = Simulation::new(scripted_config(1), proto());
    let obj = ObjectId(0);
    sim.schedule_transaction(
        SimTime::from_millis(1),
        ClientId(0),
        TxnRequest::write(obj, Bytes::from_static(b"first")),
    );
    sim.schedule_transaction(
        SimTime::from_millis(50),
        ClientId(0),
        TxnRequest::write(obj, Bytes::from_static(b"second")),
    );
    sim.schedule_transaction(
        SimTime::from_millis(100),
        ClientId(1),
        TxnRequest::read(obj),
    );
    let report = sim.run();
    assert!(report.consistent);
    assert_eq!(report.metrics.txns_ok, 3);
    assert_eq!(report.metrics.txns_failed, 0);
    // The committed model holds the second value.
    let (_, value) = sim.checker().committed(obj).unwrap();
    assert_eq!(value, Bytes::from_static(b"second"));
    // And the read observed it (history's read event carries the final ts).
    let read_event = report
        .history
        .events()
        .iter()
        .find(|e| e.kind == arbitree_sim::HistoryKind::Read)
        .unwrap();
    assert_eq!(read_event.ts.version(), 2);
}

#[test]
fn scripted_multi_object_transaction_is_atomic() {
    let mut sim = Simulation::new(scripted_config(2), proto());
    sim.schedule_transaction(
        SimTime::from_millis(1),
        ClientId(0),
        TxnRequest {
            reads: vec![ObjectId(2)],
            writes: vec![
                (ObjectId(0), Bytes::from_static(b"a")),
                (ObjectId(1), Bytes::from_static(b"b")),
            ],
        },
    );
    let report = sim.run();
    assert!(report.consistent);
    assert_eq!(report.metrics.txns_ok, 1);
    assert_eq!(report.metrics.reads_ok, 1);
    assert_eq!(report.metrics.writes_ok, 2);
    let (_, a) = sim.checker().committed(ObjectId(0)).unwrap();
    let (_, b) = sim.checker().committed(ObjectId(1)).unwrap();
    assert_eq!(a, Bytes::from_static(b"a"));
    assert_eq!(b, Bytes::from_static(b"b"));
}

#[test]
fn no_auto_workload_means_only_scripted_txns_run() {
    let mut sim = Simulation::new(scripted_config(3), proto());
    sim.schedule_transaction(
        SimTime::from_millis(1),
        ClientId(0),
        TxnRequest::read(ObjectId(0)),
    );
    let report = sim.run();
    assert_eq!(report.metrics.txns_ok, 1);
    assert_eq!(report.metrics.ops_ok(), 1);
}

#[test]
fn scripted_queue_drains_in_order_per_client() {
    let mut sim = Simulation::new(scripted_config(4), proto());
    // Queue three writes at the same instant: they must apply in order.
    for (i, v) in [&b"1"[..], b"2", b"3"].iter().enumerate() {
        sim.schedule_transaction(
            SimTime::from_millis(1 + i as u64),
            ClientId(0),
            TxnRequest::write(ObjectId(0), Bytes::copy_from_slice(v)),
        );
    }
    let report = sim.run();
    assert!(report.consistent);
    assert_eq!(report.metrics.txns_ok, 3);
    let (ts, value) = sim.checker().committed(ObjectId(0)).unwrap();
    assert_eq!(value, Bytes::from_static(b"3"));
    assert_eq!(ts.version(), 3);
}

#[test]
fn scripted_and_auto_workload_compose() {
    let mut cfg = scripted_config(5);
    cfg.auto_workload = true;
    let mut sim = Simulation::new(cfg, proto());
    sim.schedule_transaction(
        SimTime::from_millis(50),
        ClientId(0),
        TxnRequest::write(ObjectId(3), Bytes::from_static(b"scripted")),
    );
    let report = sim.run();
    assert!(report.consistent);
    // The random workload also ran.
    assert!(report.metrics.txns_ok > 1);
}

#[test]
#[should_panic(expected = "appears twice")]
fn duplicate_object_rejected() {
    let mut sim = Simulation::new(scripted_config(6), proto());
    sim.schedule_transaction(
        SimTime::from_millis(1),
        ClientId(0),
        TxnRequest {
            reads: vec![ObjectId(0)],
            writes: vec![(ObjectId(0), Bytes::new())],
        },
    );
}

#[test]
#[should_panic(expected = "out of range")]
fn bad_object_rejected() {
    let mut sim = Simulation::new(scripted_config(7), proto());
    sim.schedule_transaction(
        SimTime::from_millis(1),
        ClientId(0),
        TxnRequest::read(ObjectId(99)),
    );
}

#[test]
#[should_panic(expected = "at least one operation")]
fn empty_transaction_rejected() {
    let mut sim = Simulation::new(scripted_config(8), proto());
    sim.schedule_transaction(SimTime::from_millis(1), ClientId(0), TxnRequest::default());
}
