//! Stress tests: many seeds, churn, message loss, and partitions — one-copy
//! consistency must hold in every execution.

use arbitree_baselines::{Grid, Hqc, Majority, Rowa, TreeQuorum};
use arbitree_core::ArbitraryProtocol;
use arbitree_quorum::{ReplicaControl, SiteId};
use arbitree_sim::{
    run_simulation, FailureSchedule, NetworkConfig, Partition, SimConfig, SimDuration, Simulation,
};

fn churn_config(seed: u64, drop: f64) -> SimConfig {
    SimConfig {
        seed,
        clients: 4,
        objects: 3,
        read_fraction: 0.6,
        network: NetworkConfig {
            drop_probability: drop,
            ..NetworkConfig::default()
        },
        duration: SimDuration::from_millis(120),
        ..SimConfig::default()
    }
}

fn churn_schedule(n: usize, seed: u64) -> FailureSchedule {
    FailureSchedule::random(
        n,
        SimDuration::from_millis(120),
        SimDuration::from_millis(30),
        SimDuration::from_millis(8),
        seed,
    )
}

#[test]
fn arbitrary_protocol_survives_churn_and_loss_many_seeds() {
    for seed in 0..12u64 {
        for spec in ["1-3-5", "1-2-2-2-3", "1-8"] {
            let proto = ArbitraryProtocol::parse(spec).unwrap();
            let n = proto.tree().replica_count();
            let report = run_simulation(
                churn_config(seed, 0.03),
                proto,
                &churn_schedule(n, seed.wrapping_mul(31)),
            );
            assert!(
                report.consistent,
                "spec {spec} seed {seed}: {} violations",
                report.violations
            );
        }
    }
}

#[test]
fn baselines_survive_churn_and_loss() {
    for seed in 0..6u64 {
        let protos: Vec<(&str, Box<dyn ReplicaControl>)> = vec![
            ("rowa", Box::new(Rowa::new(7))),
            ("majority", Box::new(Majority::new(7))),
            ("tree-quorum", Box::new(TreeQuorum::new(2))),
            ("hqc", Box::new(Hqc::new(2))),
            ("grid", Box::new(Grid::new(3, 3))),
        ];
        for (name, proto) in protos {
            let n = proto.universe().len();
            let report = run_simulation(
                churn_config(seed, 0.02),
                proto,
                &churn_schedule(n, seed.wrapping_mul(17).wrapping_add(3)),
            );
            assert!(
                report.consistent,
                "{name} seed {seed}: {} violations",
                report.violations
            );
            assert!(
                report.metrics.ops_ok() > 0,
                "{name} seed {seed} made no progress"
            );
        }
    }
}

#[test]
fn heavy_write_workload_under_churn() {
    for seed in 0..8u64 {
        let proto = ArbitraryProtocol::parse("1-2-2-3-3").unwrap();
        let n = proto.tree().replica_count();
        let mut config = churn_config(seed, 0.05);
        config.read_fraction = 0.1;
        let report = run_simulation(config, proto, &churn_schedule(n, seed + 100));
        assert!(
            report.consistent,
            "seed {seed}: {} violations",
            report.violations
        );
    }
}

#[test]
fn partition_heals_and_progress_resumes() {
    let proto = ArbitraryProtocol::parse("1-3-5").unwrap();
    let mut sim = Simulation::new(churn_config(3, 0.0), proto);
    // Partition level 2 away; since Partition is installed statically here,
    // model healing by crash/recover of the same sites instead.
    for s in 3..8u32 {
        sim.schedule_crash(arbitree_sim::SimTime::from_millis(5), SiteId::new(s));
        sim.schedule_recover(arbitree_sim::SimTime::from_millis(60), SiteId::new(s));
    }
    let report = sim.run();
    assert!(report.consistent);
    assert!(report.metrics.writes_ok > 0, "{}", report.metrics);
    assert!(report.metrics.reads_ok > 0);
}

#[test]
fn static_partition_of_whole_level_blocks_everything_safely() {
    let proto = ArbitraryProtocol::parse("1-3-5").unwrap();
    let mut sim = Simulation::new(churn_config(5, 0.0), proto);
    sim.set_partition(Partition::isolate_sites((0..3).map(SiteId::new)));
    let report = sim.run();
    assert!(report.consistent);
    // Level 1 unreachable: reads (need every level) and writes to level 1
    // fail; writes to level 2 still need the version-phase read quorum,
    // which spans level 1 → everything eventually fails or blocks.
    assert_eq!(report.metrics.reads_ok, 0);
    assert_eq!(report.metrics.writes_ok, 0);
}

#[test]
fn extreme_drop_rate_makes_no_progress_but_stays_safe() {
    let proto = ArbitraryProtocol::parse("1-3-5").unwrap();
    let mut config = churn_config(9, 0.9);
    config.duration = SimDuration::from_millis(60);
    let report = run_simulation(config, proto, &FailureSchedule::none());
    assert!(report.consistent);
}

#[test]
fn reports_deterministic_across_identical_runs() {
    let mk = || {
        let proto = ArbitraryProtocol::parse("1-2-3-4").unwrap();
        run_simulation(churn_config(11, 0.04), proto, &churn_schedule(9, 42))
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.ops_incomplete, b.ops_incomplete);
}

#[test]
fn offline_linearizability_check_agrees_with_online_checker() {
    // Record full histories under churn and verify them with the
    // independent offline checker.
    for seed in 0..8u64 {
        let proto = ArbitraryProtocol::parse("1-3-5").unwrap();
        let mut config = churn_config(seed, 0.03);
        config.record_history = true;
        let report = run_simulation(config, proto, &churn_schedule(8, seed + 50));
        assert!(report.consistent, "online checker failed at seed {seed}");
        let violations = report.history.check_linearizable();
        assert!(
            violations.is_empty(),
            "seed {seed}: offline violations: {violations:?}"
        );
        assert_eq!(
            report.history.events().len() as u64,
            report.metrics.ops_ok(),
            "history records every successful op"
        );
    }
}

#[test]
fn offline_check_covers_reconfiguration_histories() {
    let mut config = churn_config(3, 0.0);
    config.record_history = true;
    let mut sim = Simulation::new(config, ArbitraryProtocol::parse("1-9").unwrap());
    sim.schedule_reconfigure(
        arbitree_sim::SimTime::from_millis(60),
        ArbitraryProtocol::parse("1-4-5").unwrap(),
    );
    let report = sim.run();
    assert!(report.consistent);
    assert_eq!(report.metrics.reconfigurations, 1);
    let violations = report.history.check_linearizable();
    assert!(violations.is_empty(), "{violations:?}");
    // Migration writes are part of the recorded history.
    assert!(
        report.history.events().len() as u64
            >= report.metrics.ops_ok() + report.metrics.migration_writes
    );
}

#[test]
fn zipfian_and_bursty_workloads_stay_consistent() {
    use arbitree_sim::{ArrivalPattern, ObjectDistribution};
    for seed in 0..6u64 {
        let proto = ArbitraryProtocol::parse("1-3-5").unwrap();
        let mut config = churn_config(seed, 0.02);
        config.objects = 6;
        config.object_distribution = ObjectDistribution::Zipfian { exponent: 1.1 };
        config.arrival_pattern = ArrivalPattern::Bursty {
            burst_len: 4,
            idle_factor: 8,
        };
        config.record_history = true;
        let report = run_simulation(config, proto, &churn_schedule(8, seed + 200));
        assert!(
            report.consistent,
            "seed {seed}: {} violations",
            report.violations
        );
        assert!(report.history.check_linearizable().is_empty());
        assert!(report.metrics.ops_ok() > 0);
    }
}

#[test]
fn hot_object_contention_serializes_correctly() {
    // One extremely hot object: all clients pile onto it, the lock manager
    // must serialize them, and versions must grow without gaps in commits.
    let proto = ArbitraryProtocol::parse("1-3-5").unwrap();
    let mut config = churn_config(1, 0.0);
    config.objects = 1;
    config.clients = 6;
    config.read_fraction = 0.3;
    config.record_history = true;
    config.duration = SimDuration::from_millis(150);
    let report = run_simulation(config, proto, &FailureSchedule::none());
    assert!(report.consistent);
    assert!(report.history.check_linearizable().is_empty());
    assert!(report.metrics.writes_ok > 10);
}

#[test]
fn large_system_120_replicas_under_churn() {
    use arbitree_core::builder::balanced;
    use arbitree_core::ArbitraryTree;
    let spec = balanced(120).unwrap();
    let tree = ArbitraryTree::from_spec(&spec).unwrap();
    let proto = ArbitraryProtocol::new(tree);
    let mut config = churn_config(2, 0.01);
    config.clients = 8;
    config.objects = 6;
    config.duration = SimDuration::from_millis(200);
    let schedule = FailureSchedule::random(
        120,
        config.duration,
        SimDuration::from_millis(80),
        SimDuration::from_millis(15),
        77,
    );
    let report = run_simulation(config, proto, &schedule);
    assert!(report.consistent, "{} violations", report.violations);
    assert!(report.metrics.ops_ok() > 50, "{}", report.metrics);
}
