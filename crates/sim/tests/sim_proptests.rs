//! Property-based simulation tests: random workloads, failure schedules
//! and network behaviours — one-copy consistency must hold in every
//! generated execution.

use arbitree_core::{ArbitraryProtocol, ArbitraryTree, TreeSpec};
use arbitree_sim::{
    build_profile, run_simulation, FailureSchedule, NemesisKind, NetworkConfig, SimConfig,
    SimDuration, SimTime, Simulation,
};
use proptest::prelude::*;

const SPECS: [&str; 5] = ["1-3-5", "1-8", "1-2-2-2-3", "1-4-4", "p:1-2-4"];

fn config_from(seed: u64, read_fraction: f64, drop: f64, repair: bool) -> SimConfig {
    SimConfig {
        seed,
        clients: 3,
        objects: 3,
        max_txn_ops: 2,
        read_fraction,
        read_repair: repair,
        network: NetworkConfig {
            drop_probability: drop,
            ..NetworkConfig::default()
        },
        duration: SimDuration::from_millis(80),
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_executions_are_consistent(
        seed in 0u64..10_000,
        spec_idx in 0usize..SPECS.len(),
        read_fraction in 0.0f64..=1.0,
        drop in 0.0f64..0.15,
        repair in any::<bool>(),
        fail_seed in 0u64..10_000,
    ) {
        let proto = ArbitraryProtocol::parse(SPECS[spec_idx]).unwrap();
        let n = proto.tree().replica_count();
        let schedule = FailureSchedule::random(
            n,
            SimDuration::from_millis(80),
            SimDuration::from_millis(25),
            SimDuration::from_millis(8),
            fail_seed,
        );
        let report = run_simulation(
            config_from(seed, read_fraction, drop, repair),
            proto,
            &schedule,
        );
        prop_assert!(
            report.consistent,
            "spec {} seed {seed} drop {drop:.3}: {} violations",
            SPECS[spec_idx],
            report.violations
        );
    }

    #[test]
    fn random_reconfigurations_are_consistent(
        seed in 0u64..10_000,
        from_idx in 0usize..3,
        to_idx in 0usize..3,
        at_ms in 10u64..60,
    ) {
        // Shapes sharing n = 8 so reconfiguration is legal.
        let shapes = ["1-8", "1-3-5", "1-2-2-4"];
        let from = ArbitraryProtocol::parse(shapes[from_idx]).unwrap();
        let to = ArbitraryProtocol::parse(shapes[to_idx]).unwrap();
        let mut sim = Simulation::new(config_from(seed, 0.5, 0.02, false), from);
        sim.schedule_reconfigure(SimTime::from_millis(at_ms), to);
        let report = sim.run();
        prop_assert!(
            report.consistent,
            "{} -> {} at {at_ms}ms seed {seed}: {} violations",
            shapes[from_idx], shapes[to_idx], report.violations
        );
    }

    #[test]
    fn failure_free_runs_never_fail_operations(
        seed in 0u64..10_000,
        spec_idx in 0usize..SPECS.len(),
        read_fraction in 0.0f64..=1.0,
    ) {
        let proto = ArbitraryProtocol::parse(SPECS[spec_idx]).unwrap();
        let report = run_simulation(
            config_from(seed, read_fraction, 0.0, false),
            proto,
            &FailureSchedule::none(),
        );
        prop_assert!(report.consistent);
        prop_assert_eq!(
            report.metrics.ops_failed(),
            0,
            "spec {} seed {}",
            SPECS[spec_idx],
            seed
        );
        prop_assert!(report.metrics.ops_ok() > 0);
    }

    /// Randomly *generated* trees (not just the fixed spec list) under
    /// random churn plus a random seeded nemesis profile: every execution
    /// must stay one-copy consistent. Widths are sorted ascending so the
    /// generated spec honours the paper's Assumption 3.1 (non-decreasing
    /// physical level widths).
    #[test]
    fn random_trees_under_chaos_are_consistent(
        seed in 0u64..10_000,
        widths in proptest::collection::vec(1usize..=4, 1..=3),
        fail_seed in 0u64..10_000,
        kind_idx in 0usize..NemesisKind::ALL.len(),
        nemesis_seed in 0u64..10_000,
    ) {
        let mut widths = widths;
        widths.sort_unstable();
        let spec = TreeSpec::logical_root(widths.iter().copied());
        let tree = ArbitraryTree::from_spec(&spec).unwrap();
        let proto = ArbitraryProtocol::new(tree);
        let n = proto.tree().replica_count();
        let levels: Vec<Vec<_>> = proto
            .tree()
            .physical_levels()
            .iter()
            .map(|&k| proto.tree().level_sites(k).to_vec())
            .collect();
        let duration = SimDuration::from_millis(80);
        let config = config_from(seed, 0.6, 0.02, true);
        let schedule = FailureSchedule::random(
            n,
            duration,
            SimDuration::from_millis(25),
            SimDuration::from_millis(8),
            fail_seed,
        );
        let nemesis = build_profile(
            NemesisKind::ALL[kind_idx],
            &levels,
            config.network,
            duration,
            nemesis_seed,
        );
        let mut sim = Simulation::new(config, proto);
        schedule.apply(&mut sim);
        sim.schedule_nemesis(&nemesis);
        let report = sim.run();
        prop_assert!(
            report.consistent,
            "widths {widths:?} seed {seed} nemesis {:?}: {} violations",
            NemesisKind::ALL[kind_idx],
            report.violations
        );
    }
}
