//! Detector-enabled stress coverage (requires `--features race-audit`):
//! the striped lock manager under real threads, the parallel experiment
//! runner, and a small chaos batch must all record clean — zero race,
//! misuse, or lock-order findings and no dropped events.
//!
//! Sessions are serialized process-wide by the recording gate, so these
//! tests are safe under the default parallel test runner.

use arbitree_core::ArbitraryProtocol;
use arbitree_quorum::SiteId;
use arbitree_race::{analyze, Session};
use arbitree_sim::{
    build_profile, parallel_map, run_cells, ExperimentCell, FailureSchedule, LockManager, LockMode,
    NemesisKind, NetworkConfig, ObjectId, OpId, SimConfig, SimDuration,
};

fn proto() -> ArbitraryProtocol {
    ArbitraryProtocol::parse("1-3-5").expect("valid tree spec")
}

#[test]
fn striped_lock_manager_records_clean_under_threads() {
    const THREADS: u32 = 4;
    const OPS: u32 = 120;
    let lm = LockManager::striped(8);
    let session = Session::start();
    arbitree_race::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let lm = &lm;
                s.spawn(move |_| {
                    let base = t * 64;
                    for i in 0..OPS {
                        let obj = ObjectId(base + i % 16);
                        let op = OpId(u64::from(t) * 10_000 + u64::from(i));
                        let mode = if i % 3 == 0 {
                            LockMode::Read
                        } else {
                            LockMode::Write
                        };
                        lm.acquire(op, obj, mode);
                        lm.holds(op, obj);
                        lm.release(op, obj);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("stress thread panicked");
        }
    })
    .expect("stress scope");
    let report = analyze(&session.finish());
    assert!(
        report.clean(),
        "striped stress produced findings:\n{}",
        report.render_text()
    );
    assert!(report.threads >= THREADS as usize);
    assert!(report.locks >= 1);
}

#[test]
fn parallel_map_records_clean() {
    let session = Session::start();
    let out = parallel_map((0..96u64).collect(), |i| i.wrapping_mul(0x9E37_79B9));
    let report = analyze(&session.finish());
    assert_eq!(out.len(), 96);
    assert!(
        report.clean(),
        "parallel_map produced findings:\n{}",
        report.render_text()
    );
}

#[test]
fn run_cells_with_chaos_records_clean_and_deterministic() {
    let cells = || {
        let mut v = Vec::new();
        for seed in 0..4u64 {
            let config = SimConfig {
                seed,
                duration: SimDuration::from_millis(60),
                ..SimConfig::default()
            };
            let mut cell = ExperimentCell::new(format!("cell-{seed}"), config.clone(), proto());
            if seed % 2 == 0 {
                cell = cell.with_failures(FailureSchedule::random(
                    8,
                    config.duration,
                    SimDuration::from_millis(20),
                    SimDuration::from_millis(5),
                    seed + 11,
                ));
            } else {
                let levels: Vec<Vec<SiteId>> =
                    vec![vec![SiteId::new(0)], (1..4).map(SiteId::new).collect()];
                cell = cell.with_nemesis(build_profile(
                    NemesisKind::PartitionCycles,
                    &levels,
                    NetworkConfig::default(),
                    config.duration,
                    seed + 7,
                ));
            }
            v.push(cell);
        }
        v
    };

    let session = Session::start();
    let audited = run_cells(cells());
    let report = analyze(&session.finish());
    assert!(
        report.clean(),
        "run_cells produced findings:\n{}",
        report.render_text()
    );

    // Recording must not perturb results: a second, untraced run of the
    // same batch returns identical reports.
    let untraced = run_cells(cells());
    assert_eq!(audited.len(), untraced.len());
    for ((la, ra), (lb, rb)) in audited.iter().zip(&untraced) {
        assert_eq!(la, lb);
        assert_eq!(ra.consistent, rb.consistent);
        assert_eq!(ra.metrics.ops_ok(), rb.metrics.ops_ok());
    }
}
