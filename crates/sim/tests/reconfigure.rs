//! Tests of live reconfiguration (the paper's "shift configurations by
//! changing only the tree") and read-repair.

use arbitree_core::ArbitraryProtocol;
use arbitree_quorum::SiteId;
use arbitree_sim::{FailureSchedule, NetworkConfig, SimConfig, SimDuration, SimTime, Simulation};

fn config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        clients: 4,
        objects: 3,
        read_fraction: 0.6,
        duration: SimDuration::from_millis(300),
        ..SimConfig::default()
    }
}

#[test]
fn reconfiguration_swaps_protocol_and_stays_consistent() {
    // Shift a 9-replica system from mostly-read (1-9) to a deeper shape.
    let mut sim = Simulation::new(config(1), ArbitraryProtocol::parse("1-9").unwrap());
    sim.schedule_reconfigure(
        SimTime::from_millis(100),
        ArbitraryProtocol::parse("1-2-3-4").unwrap(),
    );
    let report = sim.run();
    assert!(report.consistent, "{} violations", report.violations);
    assert_eq!(report.metrics.reconfigurations, 1);
    assert_eq!(report.metrics.migration_writes, 3); // one per object
    assert_eq!(sim.protocol().describe(), "1-2-3-4");
    // Work happened on both sides of the swap.
    assert!(report.metrics.reads_ok > 20);
    assert!(report.metrics.writes_ok > 5);
}

#[test]
fn reads_after_swap_see_pre_swap_writes() {
    // Force writes before the swap, then a read-only phase after: values
    // written under the old structure must be visible under the new one.
    let mut cfg = config(2);
    cfg.read_fraction = 0.0; // writes only before the swap
    cfg.duration = SimDuration::from_millis(400);
    let mut sim = Simulation::new(cfg, ArbitraryProtocol::parse("1-9").unwrap());
    sim.schedule_reconfigure(
        SimTime::from_millis(200),
        ArbitraryProtocol::parse("1-4-5").unwrap(),
    );
    let report = sim.run();
    assert!(report.consistent, "{} violations", report.violations);
    assert_eq!(report.metrics.reconfigurations, 1);
    assert!(report.writes_recorded > 3);
}

#[test]
fn reconfiguration_under_churn_is_safe_even_if_abandoned() {
    for seed in 0..10u64 {
        let mut sim = Simulation::new(config(seed), ArbitraryProtocol::parse("1-3-5").unwrap());
        let schedule = FailureSchedule::random(
            8,
            SimDuration::from_millis(300),
            SimDuration::from_millis(50),
            SimDuration::from_millis(12),
            seed.wrapping_mul(7),
        );
        schedule.apply(&mut sim);
        sim.schedule_reconfigure(
            SimTime::from_millis(120),
            ArbitraryProtocol::parse("1-2-2-4").unwrap(),
        );
        let report = sim.run();
        // Whether the migration succeeded or was abandoned, the execution
        // must be one-copy consistent.
        assert!(
            report.consistent,
            "seed {seed}: {} violations (reconfigs {})",
            report.violations, report.metrics.reconfigurations
        );
    }
}

#[test]
fn multiple_sequential_reconfigurations() {
    let mut sim = Simulation::new(config(5), ArbitraryProtocol::parse("1-9").unwrap());
    sim.schedule_reconfigure(
        SimTime::from_millis(80),
        ArbitraryProtocol::parse("1-4-5").unwrap(),
    );
    sim.schedule_reconfigure(
        SimTime::from_millis(180),
        ArbitraryProtocol::parse("1-2-3-4").unwrap(),
    );
    let report = sim.run();
    assert!(report.consistent);
    assert_eq!(report.metrics.reconfigurations, 2);
    assert_eq!(sim.protocol().describe(), "1-2-3-4");
}

#[test]
#[should_panic(expected = "keep the replica set")]
fn reconfiguration_rejects_different_replica_count() {
    let mut sim = Simulation::new(config(6), ArbitraryProtocol::parse("1-9").unwrap());
    sim.schedule_reconfigure(
        SimTime::from_millis(10),
        ArbitraryProtocol::parse("1-3-5").unwrap(), // 8 != 9
    );
    let _ = sim.run();
}

#[test]
fn read_repair_refreshes_stale_members() {
    // A site crashes, misses writes, recovers; with read-repair on, reads
    // that observe its stale answers refresh it.
    let mut cfg = config(7);
    cfg.read_repair = true;
    cfg.network = NetworkConfig::default();
    let mut sim = Simulation::new(cfg, ArbitraryProtocol::parse("1-3-5").unwrap());
    sim.schedule_crash(SimTime::from_millis(20), SiteId::new(3));
    sim.schedule_recover(SimTime::from_millis(150), SiteId::new(3));
    let report = sim.run();
    assert!(report.consistent);
    assert!(
        report.metrics.repairs_sent > 0,
        "expected repairs after recovery ({})",
        report.metrics
    );
    // The stale member actually installed repaired versions; any repair
    // that raced a newer commit was discarded by the timestamp guard, not
    // applied over it.
    assert!(
        report.metrics.repairs_applied > 0,
        "expected applied repairs ({})",
        report.metrics
    );
    assert!(
        report.metrics.repairs_applied + report.metrics.repairs_ignored_stale
            <= report.metrics.repairs_sent,
        "every applied/ignored repair was sent ({})",
        report.metrics
    );
}

#[test]
fn stale_read_repairs_are_counted_not_applied() {
    // With repair traffic racing live writes under loss, at least some
    // repairs arrive carrying a timestamp the site has already passed —
    // those must be counted as ignored, and never regress the store.
    let mut cfg = config(9);
    cfg.read_repair = true;
    cfg.network = NetworkConfig {
        drop_probability: 0.10,
        ..NetworkConfig::default()
    };
    cfg.read_fraction = 0.5;
    let mut sim = Simulation::new(cfg, ArbitraryProtocol::parse("1-3-5").unwrap());
    sim.schedule_crash(SimTime::from_millis(20), SiteId::new(3));
    sim.schedule_recover(SimTime::from_millis(80), SiteId::new(3));
    sim.schedule_crash(SimTime::from_millis(120), SiteId::new(4));
    sim.schedule_recover(SimTime::from_millis(180), SiteId::new(4));
    let report = sim.run();
    assert!(report.consistent, "violations: {}", report.violations);
    assert!(
        report.metrics.repairs_applied > 0,
        "expected applied repairs ({})",
        report.metrics
    );
}

#[test]
fn read_repair_off_by_default() {
    let mut sim = Simulation::new(config(8), ArbitraryProtocol::parse("1-3-5").unwrap());
    sim.schedule_crash(SimTime::from_millis(20), SiteId::new(3));
    sim.schedule_recover(SimTime::from_millis(150), SiteId::new(3));
    let report = sim.run();
    assert_eq!(report.metrics.repairs_sent, 0);
    assert!(report.consistent);
}

#[test]
fn reconfiguration_determinism() {
    let run = |seed| {
        let mut sim = Simulation::new(config(seed), ArbitraryProtocol::parse("1-9").unwrap());
        sim.schedule_reconfigure(
            SimTime::from_millis(90),
            ArbitraryProtocol::parse("1-2-3-4").unwrap(),
        );
        sim.run()
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a.metrics, b.metrics);
}
