//! Mutation-kill matrix for the race detector (requires `race-audit`):
//! every seeded concurrency bug must be flagged with a finding of the
//! matching class and a non-empty replayable trace, and the unmutated
//! scenario suite must run clean.
//!
//! Sessions are serialized process-wide by the recording gate, so these
//! tests are safe under the default parallel test runner.

use arbitree_race::{analyze, mutants, RaceMutation};

#[test]
fn every_seeded_mutation_is_killed_with_a_trace() {
    for m in RaceMutation::ALL {
        let log = mutants::run(Some(m));
        assert_eq!(log.dropped, 0, "{}: log overflowed", m.name());
        let report = analyze(&log);
        let killer = report.findings.iter().find(|f| m.kills(f));
        let killer = killer.unwrap_or_else(|| {
            panic!(
                "mutation {} survived; findings: {:?}",
                m.name(),
                report.findings
            )
        });
        assert!(
            !killer.trace.is_empty(),
            "{}: kill finding has no replayable trace",
            m.name()
        );
    }
}

#[test]
fn unmutated_scenarios_run_clean() {
    let log = mutants::run(None);
    assert_eq!(log.dropped, 0);
    let report = analyze(&log);
    assert!(
        report.clean(),
        "clean run produced findings: {}",
        report.render_text()
    );
    // The clean suite still exercises every event kind.
    assert!(report.threads >= 5);
    assert!(report.locks >= 3);
    assert!(report.cells >= 3);
}

#[test]
fn kill_matrix_is_exclusive_per_class() {
    // The double-release scenario must not also trip the race or cycle
    // detectors, and vice versa: each mutation is killed by its own class.
    let log = mutants::run(Some(RaceMutation::DoubleRelease));
    let report = analyze(&log);
    assert!(report
        .findings
        .iter()
        .all(|f| RaceMutation::DoubleRelease.kills(f)));

    let log = mutants::run(Some(RaceMutation::UnsortedStripes));
    let report = analyze(&log);
    assert!(report
        .findings
        .iter()
        .all(|f| RaceMutation::UnsortedStripes.kills(f)));
}
