//! Traced lock wrappers: drop-in replacements for `std::sync::Mutex` and
//! `std::sync::RwLock` that record acquire/release events and shadow the
//! protected value with one [`CellId`](crate::event::CellId) whose accesses
//! (guard deref / deref-mut) are recorded too.
//!
//! With the `race-audit` feature off every method is a plain passthrough —
//! the wrapper holds nothing but the std primitive and the recording calls
//! do not exist in the compiled code.
//!
//! Poisoning: a traced lock never surfaces `PoisonError` — a poisoned lock
//! yields its inner guard (parking_lot semantics). Panic propagation is the
//! join layer's job ([`scope`](crate::scope)), not the lock's.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "race-audit")]
use crate::event::{CellId, EventKind, LockId};
#[cfg(feature = "race-audit")]
use crate::log::{fresh_id, record};

/// A mutex whose lock/unlock and guarded accesses are recorded when the
/// `race-audit` feature is on; a zero-cost `std::sync::Mutex` otherwise.
pub struct TracedMutex<T> {
    inner: Mutex<T>,
    #[cfg(feature = "race-audit")]
    lock: LockId,
    #[cfg(feature = "race-audit")]
    cell: CellId,
}

impl<T> TracedMutex<T> {
    /// Create a traced mutex protecting `value`.
    pub fn new(value: T) -> Self {
        TracedMutex {
            inner: Mutex::new(value),
            #[cfg(feature = "race-audit")]
            lock: LockId(fresh_id()),
            #[cfg(feature = "race-audit")]
            cell: CellId(fresh_id()),
        }
    }

    /// Acquire the lock, blocking. Never returns a poison error: a
    /// poisoned mutex yields its guard.
    pub fn lock(&self) -> TracedMutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        #[cfg(feature = "race-audit")]
        record(EventKind::Acquire {
            lock: self.lock,
            shared: false,
        });
        TracedMutexGuard {
            guard,
            #[cfg(feature = "race-audit")]
            lock: self.lock,
            #[cfg(feature = "race-audit")]
            cell: self.cell,
        }
    }

    /// Mutable access without locking (requires exclusive ownership, so no
    /// event is recorded).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for TracedMutex<T> {
    fn default() -> Self {
        TracedMutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for TracedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracedMutex")
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard for a [`TracedMutex`]. Dereferencing records a shadow read,
/// mutably dereferencing a shadow write; dropping records the release.
pub struct TracedMutexGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    #[cfg(feature = "race-audit")]
    lock: LockId,
    #[cfg(feature = "race-audit")]
    cell: CellId,
}

impl<T> Deref for TracedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        #[cfg(feature = "race-audit")]
        record(EventKind::Read { cell: self.cell });
        &self.guard
    }
}

impl<T> DerefMut for TracedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        #[cfg(feature = "race-audit")]
        record(EventKind::Write { cell: self.cell });
        &mut self.guard
    }
}

impl<T> Drop for TracedMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "race-audit")]
        record(EventKind::Release { lock: self.lock });
    }
}

impl<T: fmt::Debug> fmt::Debug for TracedMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.guard, f)
    }
}

/// A reader-writer lock whose acquisitions are recorded when `race-audit`
/// is on; a zero-cost `std::sync::RwLock` otherwise.
///
/// Known blind spot (documented false-negative): two threads that both hold
/// the *read* lock and write the protected value through interior
/// mutability appear protected to the lockset pass, because shared
/// acquisitions still contribute the lock to the candidate set.
pub struct TracedRwLock<T> {
    inner: RwLock<T>,
    #[cfg(feature = "race-audit")]
    lock: LockId,
    #[cfg(feature = "race-audit")]
    cell: CellId,
}

impl<T> TracedRwLock<T> {
    /// Create a traced rwlock protecting `value`.
    pub fn new(value: T) -> Self {
        TracedRwLock {
            inner: RwLock::new(value),
            #[cfg(feature = "race-audit")]
            lock: LockId(fresh_id()),
            #[cfg(feature = "race-audit")]
            cell: CellId(fresh_id()),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> TracedReadGuard<'_, T> {
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        #[cfg(feature = "race-audit")]
        record(EventKind::Acquire {
            lock: self.lock,
            shared: true,
        });
        TracedReadGuard {
            guard,
            #[cfg(feature = "race-audit")]
            lock: self.lock,
            #[cfg(feature = "race-audit")]
            cell: self.cell,
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> TracedWriteGuard<'_, T> {
        let guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        #[cfg(feature = "race-audit")]
        record(EventKind::Acquire {
            lock: self.lock,
            shared: false,
        });
        TracedWriteGuard {
            guard,
            #[cfg(feature = "race-audit")]
            lock: self.lock,
            #[cfg(feature = "race-audit")]
            cell: self.cell,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for TracedRwLock<T> {
    fn default() -> Self {
        TracedRwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for TracedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracedRwLock")
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared read guard for a [`TracedRwLock`].
pub struct TracedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    #[cfg(feature = "race-audit")]
    lock: LockId,
    #[cfg(feature = "race-audit")]
    cell: CellId,
}

impl<T> Deref for TracedReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        #[cfg(feature = "race-audit")]
        record(EventKind::Read { cell: self.cell });
        &self.guard
    }
}

impl<T> Drop for TracedReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "race-audit")]
        record(EventKind::Release { lock: self.lock });
    }
}

impl<T: fmt::Debug> fmt::Debug for TracedReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.guard, f)
    }
}

/// Exclusive write guard for a [`TracedRwLock`].
pub struct TracedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    #[cfg(feature = "race-audit")]
    lock: LockId,
    #[cfg(feature = "race-audit")]
    cell: CellId,
}

impl<T> Deref for TracedWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        #[cfg(feature = "race-audit")]
        record(EventKind::Read { cell: self.cell });
        &self.guard
    }
}

impl<T> DerefMut for TracedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        #[cfg(feature = "race-audit")]
        record(EventKind::Write { cell: self.cell });
        &mut self.guard
    }
}

impl<T> Drop for TracedWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "race-audit")]
        record(EventKind::Release { lock: self.lock });
    }
}

impl<T: fmt::Debug> fmt::Debug for TracedWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.guard, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = TracedMutex::new(10);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 15);
        assert_eq!(m.into_inner(), 15);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = TracedRwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[cfg(feature = "race-audit")]
    #[test]
    fn mutex_records_acquire_access_release() {
        use crate::event::EventKind;
        use crate::log::Session;

        let m = TracedMutex::new(0u32);
        let session = Session::start();
        *m.lock() = 1;
        let log = session.finish();
        let kinds: Vec<_> = log.events.iter().map(|e| e.kind).collect();
        assert!(matches!(kinds[0], EventKind::Acquire { shared: false, .. }));
        assert!(matches!(kinds[1], EventKind::Write { .. }));
        assert!(matches!(kinds[2], EventKind::Release { .. }));
    }
}
