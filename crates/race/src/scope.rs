//! Traced scoped threads: a wrapper over the workspace's crossbeam
//! stand-in that records fork/join happens-before edges.
//!
//! [`Scope::spawn`] allocates the child's thread id *in the parent* and
//! records the `Fork` event before the child can run, so the edge is always
//! well-ordered in the log. [`ScopedJoinHandle::join`] records the `Join`
//! edge after the child has fully stopped.
//!
//! Caveat (documented discipline, enforced by the clean-run smoke suite):
//! a spawned thread that is never explicitly joined is still joined
//! implicitly when the scope ends, but *no `Join` event is recorded* — its
//! writes will look unordered to the analyzer. Join every handle you spawn,
//! or synchronize through a traced channel.

use std::any::Any;
use std::fmt;

#[cfg(feature = "race-audit")]
use crate::event::{EventKind, ThreadId};
#[cfg(feature = "race-audit")]
use crate::log::{adopt, fresh_thread_id, record};

/// Result of a scoped thread or scope: `Err` carries the panic payload.
pub type ScopeResult<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

/// A traced scope handle; see [`scope`].
#[derive(Debug, Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: crossbeam::thread::Scope<'scope, 'env>,
}

/// Handle to a traced scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: crossbeam::thread::ScopedJoinHandle<'scope, T>,
    #[cfg(feature = "race-audit")]
    child: ThreadId,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread to finish, recording the join edge. Returns
    /// `Err` with the panic payload if the thread panicked.
    pub fn join(self) -> ScopeResult<T> {
        let result = self.inner.join();
        #[cfg(feature = "race-audit")]
        record(EventKind::Join { child: self.child });
        result
    }
}

impl<T> fmt::Debug for ScopedJoinHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScopedJoinHandle").finish_non_exhaustive()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a traced scoped thread. The `Fork` edge is recorded before the
    /// child can run; the closure receives the scope again so it can spawn
    /// siblings.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        #[cfg(feature = "race-audit")]
        let child = {
            let child = fresh_thread_id();
            record(EventKind::Fork { child });
            child
        };
        let inner = self.inner.spawn(move |cs| {
            #[cfg(feature = "race-audit")]
            adopt(child);
            f(&Scope { inner: *cs })
        });
        ScopedJoinHandle {
            inner,
            #[cfg(feature = "race-audit")]
            child,
        }
    }
}

/// Create a traced scope for spawning borrowing threads. All spawned
/// threads are joined when the closure returns; a panic in the closure (or
/// an unjoined spawned thread) is reported as `Err`.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    crossbeam::thread::scope(|s| f(&Scope { inner: *s }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_scope_spawns_and_joins() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panic_payload_surfaces_through_join() {
        let r = scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        });
        assert!(r.unwrap());
    }

    #[cfg(feature = "race-audit")]
    #[test]
    fn fork_and_join_edges_bracket_child_events() {
        use crate::event::{CellId, EventKind};
        use crate::log::{record, Session};

        let session = Session::start();
        scope(|s| {
            let h = s.spawn(|_| record(EventKind::Write { cell: CellId(99) }));
            h.join().unwrap();
        })
        .unwrap();
        let log = session.finish();
        let kinds: Vec<_> = log.events.iter().map(|e| e.kind).collect();
        assert!(matches!(kinds[0], EventKind::Fork { .. }));
        assert!(matches!(kinds[1], EventKind::Write { .. }));
        assert!(matches!(kinds[2], EventKind::Join { .. }));
        assert_eq!(log.events[0].thread, log.events[2].thread);
        match (kinds[0], kinds[2]) {
            (EventKind::Fork { child: f }, EventKind::Join { child: j }) => {
                assert_eq!(f, j);
                assert_eq!(log.events[1].thread, f);
            }
            _ => unreachable!(),
        }
    }
}
