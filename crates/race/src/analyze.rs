//! The post-run analyzer: one pass over a [`SessionLog`] computing
//! per-thread vector clocks (happens-before via fork/join and channel
//! send/recv edges — deliberately *not* lock edges), Eraser-style candidate
//! locksets per shadow cell, a per-thread held-lock map (misuse detection),
//! and a dynamic lock-order graph with cycle detection.
//!
//! False-positive policy: a cell whose candidate lockset empties is only
//! reported when a *concrete witness pair* exists — two accesses from
//! different threads, at least one a write, with disjoint locksets and no
//! happens-before order between them. Cells that empty their candidate but
//! stay fully ordered (fork/join or channel pipelines) are counted in
//! [`RaceReport::hb_suppressed`] instead of reported.

use std::collections::{BTreeMap, BTreeSet};

use crate::event::{CellId, EventKind, LockId, RaceEvent, SessionLog, ThreadId};
use crate::report::{Finding, FindingKind, RaceReport};

/// Maximum rendered lines per finding trace.
const TRACE_CAP: usize = 32;
/// Depth bound for lock-order cycle search (cycles in practice are 2–3).
const CYCLE_DEPTH_CAP: usize = 16;

#[derive(Debug, Clone, Default)]
struct VectorClock(Vec<u32>);

impl VectorClock {
    fn get(&self, i: usize) -> u32 {
        self.0.get(i).copied().unwrap_or(0)
    }

    fn tick(&mut self, i: usize) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] += 1;
    }

    fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }
}

#[derive(Debug, Clone)]
struct Access {
    seq: usize,
    dense: usize,
    thread: ThreadId,
    epoch: u32,
    lockset: BTreeSet<LockId>,
    write: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Virgin,
    Exclusive(usize),
    Shared,
    SharedModified,
}

#[derive(Debug)]
struct CellState {
    phase: Phase,
    candidate: BTreeSet<LockId>,
    last_read: BTreeMap<usize, Access>,
    last_write: BTreeMap<usize, Access>,
    reported: bool,
    suppressed: bool,
}

#[derive(Debug, Clone, Copy)]
struct EdgeWitness {
    held_seq: usize,
    acq_seq: usize,
}

/// Analyze one session log and report races, lock misuse, and lock-order
/// cycles.
pub fn analyze(log: &SessionLog) -> RaceReport {
    let events = &log.events;
    let mut dense: BTreeMap<ThreadId, usize> = BTreeMap::new();
    let mut vcs: Vec<VectorClock> = Vec::new();
    let mut pending_fork: BTreeMap<ThreadId, VectorClock> = BTreeMap::new();
    let mut msgs: BTreeMap<u64, VectorClock> = BTreeMap::new();
    // Per dense thread: held locks -> sequence number of the acquire.
    let mut held: Vec<BTreeMap<LockId, usize>> = Vec::new();
    let mut edges: BTreeMap<(LockId, LockId), EdgeWitness> = BTreeMap::new();
    let mut cells: BTreeMap<CellId, CellState> = BTreeMap::new();
    let mut locks_seen: BTreeSet<LockId> = BTreeSet::new();
    let mut misuse_reported: BTreeSet<LockId> = BTreeSet::new();
    let mut findings: Vec<Finding> = Vec::new();

    for (seq, ev) in events.iter().enumerate() {
        let d = match dense.get(&ev.thread) {
            Some(&d) => d,
            None => {
                let d = vcs.len();
                dense.insert(ev.thread, d);
                // A forked thread inherits everything the parent did before
                // the fork; a root thread starts with an empty clock.
                vcs.push(pending_fork.remove(&ev.thread).unwrap_or_default());
                held.push(BTreeMap::new());
                d
            }
        };
        vcs[d].tick(d);

        match ev.kind {
            EventKind::Fork { child } => {
                pending_fork.insert(child, vcs[d].clone());
            }
            EventKind::Join { child } => {
                if let Some(&cd) = dense.get(&child) {
                    let snapshot = vcs[cd].clone();
                    vcs[d].join(&snapshot);
                }
                // A join of a thread that never recorded is a no-op: there
                // is nothing to order.
            }
            EventKind::Send { msg, .. } => {
                msgs.insert(msg, vcs[d].clone());
            }
            EventKind::Recv { msg, .. } => {
                if let Some(vc) = msgs.remove(&msg) {
                    vcs[d].join(&vc);
                }
            }
            EventKind::Acquire { lock, .. } => {
                locks_seen.insert(lock);
                if held[d].contains_key(&lock) {
                    if misuse_reported.insert(lock) {
                        findings.push(Finding {
                            kind: FindingKind::LockMisuse { lock },
                            message: format!(
                                "t{} re-acquired L{} while already holding it",
                                ev.thread.0, lock.0
                            ),
                            trace: vec![
                                trace_line(events, held[d][&lock]),
                                trace_line(events, seq),
                            ],
                        });
                    }
                } else {
                    for (&h, &held_seq) in held[d].iter() {
                        edges.entry((h, lock)).or_insert(EdgeWitness {
                            held_seq,
                            acq_seq: seq,
                        });
                    }
                    held[d].insert(lock, seq);
                }
            }
            EventKind::Release { lock } => {
                locks_seen.insert(lock);
                if held[d].remove(&lock).is_none() && misuse_reported.insert(lock) {
                    findings.push(Finding {
                        kind: FindingKind::LockMisuse { lock },
                        message: format!(
                            "t{} released L{} without holding it",
                            ev.thread.0, lock.0
                        ),
                        trace: vec![trace_line(events, seq)],
                    });
                }
            }
            EventKind::Read { cell } | EventKind::Write { cell } => {
                let write = matches!(ev.kind, EventKind::Write { .. });
                let access = Access {
                    seq,
                    dense: d,
                    thread: ev.thread,
                    epoch: vcs[d].get(d),
                    lockset: held[d].keys().copied().collect(),
                    write,
                };
                let state = cells.entry(cell).or_insert_with(|| CellState {
                    phase: Phase::Virgin,
                    candidate: BTreeSet::new(),
                    last_read: BTreeMap::new(),
                    last_write: BTreeMap::new(),
                    reported: false,
                    suppressed: false,
                });
                match state.phase {
                    Phase::Virgin => {
                        state.phase = Phase::Exclusive(d);
                        state.candidate = access.lockset.clone();
                    }
                    Phase::Exclusive(owner) if owner == d => {
                        state.candidate = state
                            .candidate
                            .intersection(&access.lockset)
                            .copied()
                            .collect();
                    }
                    Phase::Exclusive(_) | Phase::Shared => {
                        state.candidate = state
                            .candidate
                            .intersection(&access.lockset)
                            .copied()
                            .collect();
                        let any_write = write || state.last_write.values().next().is_some();
                        state.phase = if any_write {
                            Phase::SharedModified
                        } else {
                            Phase::Shared
                        };
                    }
                    Phase::SharedModified => {
                        state.candidate = state
                            .candidate
                            .intersection(&access.lockset)
                            .copied()
                            .collect();
                    }
                }
                if state.phase == Phase::SharedModified
                    && state.candidate.is_empty()
                    && !state.reported
                {
                    if let Some(prior) = find_witness(state, &access, &vcs) {
                        findings.push(race_finding(events, cell, &prior, &access));
                        state.reported = true;
                        state.suppressed = false;
                    } else {
                        state.suppressed = true;
                    }
                }
                let slot = if write {
                    &mut state.last_write
                } else {
                    &mut state.last_read
                };
                slot.insert(d, access);
            }
        }
    }

    findings.extend(cycle_findings(events, &edges));

    let hb_suppressed = cells
        .values()
        .filter(|c| c.suppressed && !c.reported)
        .count();
    RaceReport {
        findings,
        events: events.len(),
        dropped: log.dropped,
        threads: dense.len(),
        locks: locks_seen.len(),
        cells: cells.len(),
        hb_suppressed,
    }
}

/// Find a prior access that forms a concrete race with `access`: different
/// thread, at least one of the pair a write, disjoint locksets, and no
/// happens-before order. Prefers write/write witnesses.
fn find_witness(state: &CellState, access: &Access, vcs: &[VectorClock]) -> Option<Access> {
    let unordered = |a: &Access| {
        a.dense != access.dense
            && a.epoch > vcs[access.dense].get(a.dense)
            && a.lockset.intersection(&access.lockset).next().is_none()
    };
    if let Some(a) = state.last_write.values().find(|a| unordered(a)) {
        return Some(a.clone());
    }
    if access.write {
        if let Some(a) = state.last_read.values().find(|a| unordered(a)) {
            return Some(a.clone());
        }
    }
    None
}

fn race_finding(events: &[RaceEvent], cell: CellId, a: &Access, b: &Access) -> Finding {
    let pair = match (a.write, b.write) {
        (true, true) => "write/write",
        (false, true) => "read/write",
        (true, false) => "write/read",
        (false, false) => "read/read",
    };
    Finding {
        kind: FindingKind::DataRace { cell },
        message: format!(
            "{} race on C{}: t{} and t{} share no lock and no happens-before order",
            pair, cell.0, a.thread.0, b.thread.0
        ),
        trace: race_trace(events, a, b),
    }
}

/// Replayable excerpt: every event between the two racing accesses from
/// either involved thread, capped to [`TRACE_CAP`] lines.
fn race_trace(events: &[RaceEvent], a: &Access, b: &Access) -> Vec<String> {
    let mut lines: Vec<String> = (a.seq..=b.seq)
        .filter(|&s| {
            let t = events[s].thread;
            t == a.thread || t == b.thread
        })
        .map(|s| trace_line(events, s))
        .collect();
    if lines.len() > TRACE_CAP {
        let elided = lines.len() - TRACE_CAP;
        let tail = lines.split_off(lines.len() - TRACE_CAP / 2);
        lines.truncate(TRACE_CAP / 2);
        lines.push(format!("... {elided} events elided ..."));
        lines.extend(tail);
    }
    lines
}

fn trace_line(events: &[RaceEvent], seq: usize) -> String {
    format!("[{seq:04}] {}", events[seq])
}

/// Enumerate lock-order cycles: simple cycles in the nesting graph where
/// the starting lock is the cycle's minimum (each cycle found once).
fn cycle_findings(
    events: &[RaceEvent],
    edges: &BTreeMap<(LockId, LockId), EdgeWitness>,
) -> Vec<Finding> {
    let mut adj: BTreeMap<LockId, Vec<LockId>> = BTreeMap::new();
    for &(a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut cycles: BTreeSet<Vec<LockId>> = BTreeSet::new();
    for &start in adj.keys() {
        let mut path = vec![start];
        let mut on_path: BTreeSet<LockId> = [start].into();
        dfs_cycles(start, start, &adj, &mut path, &mut on_path, &mut cycles);
    }
    cycles
        .into_iter()
        .map(|cycle| {
            let chain: Vec<String> = cycle
                .iter()
                .chain(cycle.first())
                .map(|l| format!("L{}", l.0))
                .collect();
            let mut trace = Vec::new();
            for i in 0..cycle.len() {
                let a = cycle[i];
                let b = cycle[(i + 1) % cycle.len()];
                if let Some(w) = edges.get(&(a, b)) {
                    trace.push(trace_line(events, w.held_seq));
                    trace.push(trace_line(events, w.acq_seq));
                }
            }
            Finding {
                kind: FindingKind::LockOrderCycle {
                    cycle: cycle.clone(),
                },
                message: format!(
                    "locks nested in incompatible orders: {}",
                    chain.join(" -> ")
                ),
                trace,
            }
        })
        .collect()
}

fn dfs_cycles(
    start: LockId,
    node: LockId,
    adj: &BTreeMap<LockId, Vec<LockId>>,
    path: &mut Vec<LockId>,
    on_path: &mut BTreeSet<LockId>,
    cycles: &mut BTreeSet<Vec<LockId>>,
) {
    if path.len() > CYCLE_DEPTH_CAP {
        return;
    }
    let Some(nexts) = adj.get(&node) else { return };
    for &next in nexts {
        if next == start {
            cycles.insert(path.clone());
        } else if next > start && !on_path.contains(&next) {
            // Only visit locks greater than the start so each cycle is
            // discovered exactly once, rooted at its minimum lock.
            path.push(next);
            on_path.insert(next);
            dfs_cycles(start, next, adj, path, on_path, cycles);
            on_path.remove(&next);
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u32, kind: EventKind) -> RaceEvent {
        RaceEvent {
            thread: ThreadId(t),
            kind,
        }
    }

    fn fork(t: u32, c: u32) -> RaceEvent {
        ev(t, EventKind::Fork { child: ThreadId(c) })
    }

    fn join(t: u32, c: u32) -> RaceEvent {
        ev(t, EventKind::Join { child: ThreadId(c) })
    }

    fn acq(t: u32, l: u64) -> RaceEvent {
        ev(
            t,
            EventKind::Acquire {
                lock: LockId(l),
                shared: false,
            },
        )
    }

    fn rel(t: u32, l: u64) -> RaceEvent {
        ev(t, EventKind::Release { lock: LockId(l) })
    }

    fn write(t: u32, c: u64) -> RaceEvent {
        ev(t, EventKind::Write { cell: CellId(c) })
    }

    fn read(t: u32, c: u64) -> RaceEvent {
        ev(t, EventKind::Read { cell: CellId(c) })
    }

    fn run(events: Vec<RaceEvent>) -> RaceReport {
        analyze(&SessionLog { events, dropped: 0 })
    }

    #[test]
    fn unordered_unlocked_sibling_writes_race() {
        let report = run(vec![
            fork(0, 1),
            fork(0, 2),
            write(1, 10),
            write(2, 10),
            join(0, 1),
            join(0, 2),
        ]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(
            report.findings[0].kind,
            FindingKind::DataRace { cell: CellId(10) }
        );
        assert!(report.findings[0].message.contains("write/write"));
        assert!(!report.findings[0].trace.is_empty());
    }

    #[test]
    fn common_lock_means_no_race() {
        let report = run(vec![
            fork(0, 1),
            fork(0, 2),
            acq(1, 7),
            write(1, 10),
            rel(1, 7),
            acq(2, 7),
            write(2, 10),
            rel(2, 7),
            join(0, 1),
            join(0, 2),
        ]);
        assert!(report.clean(), "{:?}", report.findings);
        assert_eq!(report.hb_suppressed, 0);
    }

    #[test]
    fn fork_join_order_suppresses_lockless_sharing() {
        // Parent writes, then the child (forked after) writes: ordered by
        // the fork edge, so no race despite an empty candidate lockset.
        let report = run(vec![write(0, 10), fork(0, 1), write(1, 10), join(0, 1)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.hb_suppressed, 1);
    }

    #[test]
    fn join_edge_orders_later_parent_read() {
        let report = run(vec![fork(0, 1), write(1, 10), join(0, 1), read(0, 10)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn missing_join_edge_is_a_race() {
        // Same shape but the parent reads before joining.
        let report = run(vec![fork(0, 1), write(1, 10), read(0, 10), join(0, 1)]);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("race on C10"));
    }

    #[test]
    fn channel_edge_orders_cross_thread_handoff() {
        let report = run(vec![
            fork(0, 1),
            write(1, 10),
            ev(
                1,
                EventKind::Send {
                    chan: crate::event::ChanId(1),
                    msg: 5,
                },
            ),
            ev(
                0,
                EventKind::Recv {
                    chan: crate::event::ChanId(1),
                    msg: 5,
                },
            ),
            read(0, 10),
            join(0, 1),
        ]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn read_only_sharing_never_reports() {
        let report = run(vec![
            fork(0, 1),
            fork(0, 2),
            read(1, 10),
            read(2, 10),
            join(0, 1),
            join(0, 2),
        ]);
        assert!(report.clean(), "{:?}", report.findings);
        assert_eq!(report.hb_suppressed, 0);
    }

    #[test]
    fn inverted_nesting_is_a_lock_order_cycle() {
        let report = run(vec![
            fork(0, 1),
            acq(0, 1),
            acq(0, 2),
            rel(0, 2),
            rel(0, 1),
            acq(1, 2),
            acq(1, 1),
            rel(1, 1),
            rel(1, 2),
            join(0, 1),
        ]);
        let cycles: Vec<_> = report
            .findings
            .iter()
            .filter(|f| matches!(f.kind, FindingKind::LockOrderCycle { .. }))
            .collect();
        assert_eq!(cycles.len(), 1);
        assert_eq!(
            cycles[0].kind,
            FindingKind::LockOrderCycle {
                cycle: vec![LockId(1), LockId(2)]
            }
        );
        assert_eq!(cycles[0].trace.len(), 4);
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let report = run(vec![
            fork(0, 1),
            acq(0, 1),
            acq(0, 2),
            rel(0, 2),
            rel(0, 1),
            acq(1, 1),
            acq(1, 2),
            rel(1, 2),
            rel(1, 1),
            join(0, 1),
        ]);
        assert!(report.clean(), "{:?}", report.findings);
    }

    #[test]
    fn double_release_is_misuse() {
        let report = run(vec![acq(0, 3), rel(0, 3), rel(0, 3)]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(
            report.findings[0].kind,
            FindingKind::LockMisuse { lock: LockId(3) }
        );
        assert!(report.findings[0].message.contains("without holding"));
    }

    #[test]
    fn reacquire_while_held_is_misuse() {
        let report = run(vec![acq(0, 3), acq(0, 3)]);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("re-acquired"));
    }

    #[test]
    fn races_are_deduplicated_per_cell() {
        let report = run(vec![
            fork(0, 1),
            fork(0, 2),
            write(1, 10),
            write(2, 10),
            write(1, 10),
            write(2, 10),
            join(0, 1),
            join(0, 2),
        ]);
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn report_counts_population() {
        let report = run(vec![
            fork(0, 1),
            acq(1, 7),
            write(1, 10),
            rel(1, 7),
            join(0, 1),
        ]);
        assert_eq!(report.events, 5);
        assert_eq!(report.threads, 2);
        assert_eq!(report.locks, 1);
        assert_eq!(report.cells, 1);
        assert!(report.clean());
    }
}
