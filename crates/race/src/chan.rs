//! Traced mpsc channel: a drop-in wrapper over `std::sync::mpsc` whose
//! send/receive pairs become happens-before edges in the analysis.
//!
//! With `race-audit` on, every message travels in an envelope carrying a
//! process-unique id; the send records `Send { chan, msg }` *before* the
//! underlying send (so the send event always precedes the matching receive
//! event in log order), and the receive records `Recv { chan, msg }` after
//! the value arrives. With the feature off the envelope type collapses to
//! `T` and the wrapper is a zero-cost passthrough.

use std::fmt;
use std::sync::mpsc;

#[cfg(feature = "race-audit")]
use crate::event::{ChanId, EventKind};
#[cfg(feature = "race-audit")]
use crate::log::{fresh_id, record};

#[cfg(feature = "race-audit")]
type Envelope<T> = (u64, T);
#[cfg(not(feature = "race-audit"))]
type Envelope<T> = T;

/// Create a traced unbounded channel.
pub fn traced_channel<T>() -> (TracedSender<T>, TracedReceiver<T>) {
    let (tx, rx) = mpsc::channel::<Envelope<T>>();
    #[cfg(feature = "race-audit")]
    let chan = ChanId(fresh_id());
    (
        TracedSender {
            inner: tx,
            #[cfg(feature = "race-audit")]
            chan,
        },
        TracedReceiver {
            inner: rx,
            #[cfg(feature = "race-audit")]
            chan,
        },
    )
}

/// Sending half of a traced channel. Clonable like `mpsc::Sender`.
pub struct TracedSender<T> {
    inner: mpsc::Sender<Envelope<T>>,
    #[cfg(feature = "race-audit")]
    chan: ChanId,
}

impl<T> TracedSender<T> {
    /// Send a value, recording the happens-before edge's source.
    pub fn send(&self, value: T) -> Result<(), mpsc::SendError<T>> {
        #[cfg(feature = "race-audit")]
        {
            let msg = fresh_id();
            record(EventKind::Send {
                chan: self.chan,
                msg,
            });
            self.inner
                .send((msg, value))
                .map_err(|mpsc::SendError((_, v))| mpsc::SendError(v))
        }
        #[cfg(not(feature = "race-audit"))]
        self.inner.send(value)
    }
}

impl<T> Clone for TracedSender<T> {
    fn clone(&self) -> Self {
        TracedSender {
            inner: self.inner.clone(),
            #[cfg(feature = "race-audit")]
            chan: self.chan,
        }
    }
}

impl<T> fmt::Debug for TracedSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracedSender").finish_non_exhaustive()
    }
}

/// Receiving half of a traced channel.
pub struct TracedReceiver<T> {
    inner: mpsc::Receiver<Envelope<T>>,
    #[cfg(feature = "race-audit")]
    chan: ChanId,
}

impl<T> TracedReceiver<T> {
    /// Block until a value arrives, recording the happens-before edge's
    /// sink.
    pub fn recv(&self) -> Result<T, mpsc::RecvError> {
        #[cfg(feature = "race-audit")]
        {
            let (msg, value) = self.inner.recv()?;
            record(EventKind::Recv {
                chan: self.chan,
                msg,
            });
            Ok(value)
        }
        #[cfg(not(feature = "race-audit"))]
        self.inner.recv()
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
        #[cfg(feature = "race-audit")]
        {
            let (msg, value) = self.inner.try_recv()?;
            record(EventKind::Recv {
                chan: self.chan,
                msg,
            });
            Ok(value)
        }
        #[cfg(not(feature = "race-audit"))]
        self.inner.try_recv()
    }

    /// Iterate over values until every sender is dropped.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> fmt::Debug for TracedReceiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracedReceiver").finish_non_exhaustive()
    }
}

impl<'a, T> IntoIterator for &'a TracedReceiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Blocking iterator over a [`TracedReceiver`]'s values.
#[derive(Debug)]
pub struct Iter<'a, T> {
    rx: &'a TracedReceiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrip_preserves_values_in_order() {
        let (tx, rx) = traced_channel();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn send_to_dropped_receiver_returns_the_value() {
        let (tx, rx) = traced_channel();
        drop(rx);
        let err = tx.send(41).unwrap_err();
        assert_eq!(err.0, 41);
    }

    #[cfg(feature = "race-audit")]
    #[test]
    fn send_event_precedes_matching_recv_event() {
        use crate::event::EventKind;
        use crate::log::Session;

        let (tx, rx) = traced_channel();
        let session = Session::start();
        tx.send("ping").unwrap();
        assert_eq!(rx.recv().unwrap(), "ping");
        let log = session.finish();
        let kinds: Vec<_> = log.events.iter().map(|e| e.kind).collect();
        match (kinds[0], kinds[1]) {
            (EventKind::Send { msg: s, .. }, EventKind::Recv { msg: r, .. }) => {
                assert_eq!(s, r);
            }
            other => panic!("unexpected event kinds: {other:?}"),
        }
    }
}
