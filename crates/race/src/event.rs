//! The event model: everything the detector knows about a run is a totally
//! ordered sequence of [`RaceEvent`]s, one per synchronization action or
//! shadowed memory access. The order is the order in which threads claimed
//! slots in the lock-free log — an actual interleaving of the run, so it is
//! consistent with every thread's program order.

use std::fmt;

/// Dense-ish identifier of an OS thread that recorded events. Assigned from
/// a global counter the first time a thread records (or when a traced
/// scope spawns it), never reused within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

/// Identifier of a traced lock (a [`TracedMutex`](crate::TracedMutex), a
/// [`TracedRwLock`](crate::TracedRwLock), or a raw lock id from the shadow
/// seam).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u64);

/// Identifier of a traced channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChanId(pub u64);

/// Identifier of a shadow word: one unit of shared state whose accesses are
/// recorded. Every traced lock shadows its protected value with one cell;
/// [`ShadowCell`](crate::shadow::ShadowCell) mints free-standing ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub u64);

/// One recorded action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The recording thread spawned `child` (a traced-scope spawn). Orders
    /// everything the parent did so far before everything the child does.
    Fork {
        /// The spawned thread.
        child: ThreadId,
    },
    /// The recording thread joined `child`. Orders everything the child did
    /// before everything the joiner does next.
    Join {
        /// The joined thread.
        child: ThreadId,
    },
    /// The recording thread acquired `lock` (`shared` for a read lock).
    Acquire {
        /// The lock acquired.
        lock: LockId,
        /// Whether the acquisition is shared (rwlock read) or exclusive.
        shared: bool,
    },
    /// The recording thread released `lock`.
    Release {
        /// The lock released.
        lock: LockId,
    },
    /// The recording thread sent message `msg` on `chan`.
    Send {
        /// The channel.
        chan: ChanId,
        /// Process-unique message id, matched by the receive.
        msg: u64,
    },
    /// The recording thread received message `msg` from `chan`. Orders
    /// everything the sender did before the send before everything the
    /// receiver does next.
    Recv {
        /// The channel.
        chan: ChanId,
        /// The received message's id.
        msg: u64,
    },
    /// The recording thread read shadow word `cell`.
    Read {
        /// The cell read.
        cell: CellId,
    },
    /// The recording thread wrote shadow word `cell`.
    Write {
        /// The cell written.
        cell: CellId,
    },
}

/// One log entry: who did what. The event's position in the drained log is
/// its sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceEvent {
    /// The recording thread.
    pub thread: ThreadId,
    /// The action.
    pub kind: EventKind,
}

impl fmt::Display for RaceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{} ", self.thread.0)?;
        match self.kind {
            EventKind::Fork { child } => write!(f, "fork t{}", child.0),
            EventKind::Join { child } => write!(f, "join t{}", child.0),
            EventKind::Acquire { lock, shared: true } => write!(f, "acquire-shared L{}", lock.0),
            EventKind::Acquire {
                lock,
                shared: false,
            } => write!(f, "acquire L{}", lock.0),
            EventKind::Release { lock } => write!(f, "release L{}", lock.0),
            EventKind::Send { chan, msg } => write!(f, "send m{} on ch{}", msg, chan.0),
            EventKind::Recv { chan, msg } => write!(f, "recv m{} from ch{}", msg, chan.0),
            EventKind::Read { cell } => write!(f, "read C{}", cell.0),
            EventKind::Write { cell } => write!(f, "write C{}", cell.0),
        }
    }
}

/// The drained outcome of one recording session: every event in claim
/// order, plus how many were dropped because the log filled up. A log with
/// drops is analyzable but its verdicts are incomplete — callers asserting
/// "no findings" should also assert `dropped == 0`.
#[derive(Debug, Clone, Default)]
pub struct SessionLog {
    /// Recorded events, in the total order the log assigned.
    pub events: Vec<RaceEvent>,
    /// Events discarded after the log reached capacity.
    pub dropped: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_compactly() {
        let ev = RaceEvent {
            thread: ThreadId(3),
            kind: EventKind::Acquire {
                lock: LockId(7),
                shared: false,
            },
        };
        assert_eq!(ev.to_string(), "t3 acquire L7");
        let ev = RaceEvent {
            thread: ThreadId(0),
            kind: EventKind::Send {
                chan: ChanId(1),
                msg: 42,
            },
        };
        assert_eq!(ev.to_string(), "t0 send m42 on ch1");
    }
}
