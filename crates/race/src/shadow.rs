//! The raw shadow seam (only compiled with `race-audit`): mint shadow
//! words and lock ids directly, without wrapping a real primitive.
//!
//! This is how code whose synchronization the wrappers cannot see (atomics,
//! protocol-level exclusion) tells the detector about its shared state, and
//! how the mutation harness seeds misuse bugs like a double release. A
//! [`ShadowCell`] carries *no data* — the real value lives wherever the
//! caller keeps it (typically atomics); the cell only names it for the
//! lockset and happens-before passes.

use crate::event::{CellId, EventKind, LockId};
use crate::log::{fresh_id, record};

/// A free-standing shadow word naming one unit of shared state.
#[derive(Debug, Clone, Copy)]
pub struct ShadowCell {
    cell: CellId,
}

impl ShadowCell {
    /// Mint a fresh shadow word.
    #[allow(clippy::new_without_default)]
    pub fn new() -> ShadowCell {
        ShadowCell {
            cell: CellId(fresh_id()),
        }
    }

    /// The cell's id (for matching findings in tests).
    pub fn id(&self) -> CellId {
        self.cell
    }

    /// Record a read of the named state.
    pub fn read(&self) {
        record(EventKind::Read { cell: self.cell });
    }

    /// Record a write of the named state.
    pub fn write(&self) {
        record(EventKind::Write { cell: self.cell });
    }
}

/// Mint a fresh lock id for use with [`raw_acquire`]/[`raw_release`].
pub fn fresh_lock() -> LockId {
    LockId(fresh_id())
}

/// Record an exclusive acquisition of `lock` without any real locking.
pub fn raw_acquire(lock: LockId) {
    record(EventKind::Acquire {
        lock,
        shared: false,
    });
}

/// Record a release of `lock` without any real unlocking.
pub fn raw_release(lock: LockId) {
    record(EventKind::Release { lock });
}
