//! Findings and reports produced by the [analyzer](crate::analyze).

use std::fmt::Write as _;

use crate::event::{CellId, LockId};

/// What kind of defect a finding describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// Two threads accessed `cell` (at least one write) with no common lock
    /// and no happens-before order between the accesses.
    DataRace {
        /// The shadow word raced on.
        cell: CellId,
    },
    /// Locks were nested in incompatible orders on different paths — a
    /// potential deadlock. The cycle lists the locks in nesting order.
    LockOrderCycle {
        /// The locks forming the cycle, each acquired while holding the
        /// previous one (and the first while holding the last).
        cycle: Vec<LockId>,
    },
    /// A lock protocol violation: releasing a lock the thread does not
    /// hold, or re-acquiring a lock it already holds.
    LockMisuse {
        /// The misused lock.
        lock: LockId,
    },
}

impl FindingKind {
    /// Short machine-friendly tag, used in JSON output and kill matching.
    pub fn tag(&self) -> &'static str {
        match self {
            FindingKind::DataRace { .. } => "data-race",
            FindingKind::LockOrderCycle { .. } => "lock-order-cycle",
            FindingKind::LockMisuse { .. } => "lock-misuse",
        }
    }
}

/// One deduplicated finding with a replayable trace.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The defect class and its subject.
    pub kind: FindingKind,
    /// One-line human description.
    pub message: String,
    /// Replayable excerpt of the event log: the sequence of recorded
    /// events (with their global sequence numbers) that exhibits the
    /// defect, filtered to the involved threads and capped in length.
    pub trace: Vec<String>,
}

/// The analyzer's verdict over one session log.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Deduplicated findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Total events analyzed.
    pub events: usize,
    /// Events dropped by the log (capacity overflow) — nonzero means the
    /// verdict is incomplete.
    pub dropped: usize,
    /// Distinct threads observed.
    pub threads: usize,
    /// Distinct locks observed.
    pub locks: usize,
    /// Distinct shadow cells observed.
    pub cells: usize,
    /// Cells whose candidate lockset emptied but where every cross-thread
    /// access pair was ordered by happens-before — suppressed as false
    /// positives rather than reported.
    pub hb_suppressed: usize,
}

impl RaceReport {
    /// True when the session produced no findings and no events were lost.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.dropped == 0
    }

    /// Render the report as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "race audit: {} events, {} threads, {} locks, {} cells, {} hb-suppressed, {} dropped",
            self.events, self.threads, self.locks, self.cells, self.hb_suppressed, self.dropped
        );
        if self.findings.is_empty() {
            out.push_str("no findings\n");
            return out;
        }
        for (i, f) in self.findings.iter().enumerate() {
            let _ = writeln!(out, "[{}] {}: {}", i + 1, f.kind.tag(), f.message);
            for line in &f.trace {
                let _ = writeln!(out, "      {line}");
            }
        }
        out
    }

    /// Render the report as JSON (same hand-rolled style as lint/audit).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(out, "  \"dropped\": {},", self.dropped);
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"locks\": {},", self.locks);
        let _ = writeln!(out, "  \"cells\": {},", self.cells);
        let _ = writeln!(out, "  \"hb_suppressed\": {},", self.hb_suppressed);
        let _ = writeln!(out, "  \"clean\": {},", self.clean());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"kind\": \"{}\",", f.kind.tag());
            let _ = writeln!(out, "      \"message\": \"{}\",", json_escape(&f.message));
            out.push_str("      \"trace\": [");
            for (j, line) in f.trace.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\"", json_escape(line));
            }
            out.push_str("]\n    }");
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_renders_no_findings() {
        let report = RaceReport {
            events: 12,
            threads: 3,
            ..RaceReport::default()
        };
        assert!(report.clean());
        assert!(report.render_text().contains("no findings"));
        assert!(report.render_json().contains("\"clean\": true"));
    }

    #[test]
    fn findings_render_with_traces() {
        let report = RaceReport {
            findings: vec![Finding {
                kind: FindingKind::DataRace { cell: CellId(4) },
                message: "unsynchronized write to C4".into(),
                trace: vec!["[0001] t0 write C4".into(), "[0002] t1 write C4".into()],
            }],
            events: 2,
            threads: 2,
            cells: 1,
            ..RaceReport::default()
        };
        assert!(!report.clean());
        let text = report.render_text();
        assert!(text.contains("data-race"));
        assert!(text.contains("[0002] t1 write C4"));
        let json = report.render_json();
        assert!(json.contains("\"kind\": \"data-race\""));
        assert!(json.contains("\"clean\": false"));
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
