//! arbitree-race: a happens-before + lockset concurrency auditor for the
//! workspace's real (threaded) code.
//!
//! The registry is unreachable, so this is a self-contained dynamic
//! detector rather than a loom/tsan integration. It has three parts:
//!
//! 1. **Traced primitives** — [`TracedMutex`], [`TracedRwLock`], traced
//!    channels ([`traced_channel`]) and traced scoped threads ([`scope`]).
//!    With the `race-audit` feature off (the default) they are zero-cost
//!    passthroughs to `std`/crossbeam; with it on, every acquire, release,
//!    send, receive, fork, join, and guarded access is recorded into a
//!    lock-free event log.
//! 2. **The analyzer** — [`analyze`] replays a recorded [`SessionLog`]
//!    computing per-thread vector clocks (fork/join and channel edges),
//!    Eraser-style candidate locksets per shadow cell, and a dynamic
//!    lock-order graph with cycle detection (the dynamic generalization of
//!    lint's static D010). Findings carry replayable traces and render as
//!    text or JSON ([`RaceReport`]).
//! 3. **The kill harness** — [`mutants`] seeds five concurrency bugs the
//!    detector must flag while the unmutated scenarios run clean.
//!
//! Recording discipline: wrap the run in a [`Session`]
//! (`race-audit` only), join every thread you spawn before finishing it,
//! and analyze the drained log. Traced primitives used with no live
//! session record nothing.
//!
//! Known blind spots (by design, documented in DESIGN.md §13): raw atomics
//! are invisible (spin-flag protocols must still be joined or channeled),
//! and a shared (read) rwlock acquisition contributes to the candidate
//! lockset even though it excludes only writers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
pub mod chan;
pub mod event;
#[cfg(feature = "race-audit")]
mod log;
#[cfg(feature = "race-audit")]
pub mod mutants;
pub mod report;
pub mod scope;
#[cfg(feature = "race-audit")]
pub mod shadow;
pub mod sync;

pub use analyze::analyze;
pub use chan::{traced_channel, TracedReceiver, TracedSender};
pub use event::{CellId, ChanId, EventKind, LockId, RaceEvent, SessionLog, ThreadId};
#[cfg(feature = "race-audit")]
pub use log::Session;
#[cfg(feature = "race-audit")]
pub use mutants::RaceMutation;
pub use report::{Finding, FindingKind, RaceReport};
pub use scope::{scope, Scope, ScopeResult, ScopedJoinHandle};
#[cfg(feature = "race-audit")]
pub use shadow::ShadowCell;
pub use sync::{TracedMutex, TracedMutexGuard, TracedReadGuard, TracedRwLock, TracedWriteGuard};
