//! Seeded concurrency bugs for the detector's mutation-kill harness (the
//! PR-4/PR-8 pattern): each [`RaceMutation`] names one bug class from the
//! threaded harness's threat model, [`run`] executes a small scenario with
//! the bug either present or fixed, and the detector must flag every
//! mutated run ([`RaceMutation::kills`]) while the unmutated suite stays
//! clean.
//!
//! The scenarios are deterministic: none of them depends on the OS
//! scheduler to expose the bug, because the vector-clock analysis flags
//! *unordered* accesses regardless of how the run happened to interleave.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::chan::traced_channel;
use crate::event::SessionLog;
use crate::log::Session;
use crate::report::{Finding, FindingKind};
use crate::scope::scope;
use crate::shadow::{fresh_lock, raw_acquire, raw_release, ShadowCell};
use crate::sync::TracedMutex;

/// One seeded concurrency bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceMutation {
    /// The guard around the shared report vector is dropped: one worker
    /// writes the shared state without taking the lock.
    DroppedGuard,
    /// Stripes are acquired out of sorted order on one path, inverting the
    /// nesting of another path.
    UnsortedStripes,
    /// A result is read by the coordinator before the worker is joined —
    /// the write reaches the reader with no happens-before edge.
    MissingJoinEdge,
    /// The shared value is read before the channel receive that was meant
    /// to order it after the producer's write.
    RecvReordered,
    /// A lock is released twice.
    DoubleRelease,
}

impl RaceMutation {
    /// Every seeded mutation, in kill-matrix order.
    pub const ALL: [RaceMutation; 5] = [
        RaceMutation::DroppedGuard,
        RaceMutation::UnsortedStripes,
        RaceMutation::MissingJoinEdge,
        RaceMutation::RecvReordered,
        RaceMutation::DoubleRelease,
    ];

    /// Stable kebab-case name (used in reports and CI output).
    pub fn name(&self) -> &'static str {
        match self {
            RaceMutation::DroppedGuard => "dropped-guard",
            RaceMutation::UnsortedStripes => "unsorted-stripes",
            RaceMutation::MissingJoinEdge => "missing-join-edge",
            RaceMutation::RecvReordered => "recv-reordered",
            RaceMutation::DoubleRelease => "double-release",
        }
    }

    /// One-line description of the seeded bug.
    pub fn describe(&self) -> &'static str {
        match self {
            RaceMutation::DroppedGuard => {
                "worker appends to the shared report vector without taking its mutex"
            }
            RaceMutation::UnsortedStripes => {
                "second path acquires stripe 1 before stripe 0, inverting the sort order"
            }
            RaceMutation::MissingJoinEdge => {
                "coordinator reads a worker's result slot before joining the worker"
            }
            RaceMutation::RecvReordered => {
                "consumer reads the produced value before the channel recv that orders it"
            }
            RaceMutation::DoubleRelease => "a stripe lock is released twice",
        }
    }

    /// Whether `finding` is the class of defect this mutation seeds.
    pub fn kills(&self, finding: &Finding) -> bool {
        match self {
            RaceMutation::DroppedGuard
            | RaceMutation::MissingJoinEdge
            | RaceMutation::RecvReordered => {
                matches!(finding.kind, FindingKind::DataRace { .. })
            }
            RaceMutation::UnsortedStripes => {
                matches!(finding.kind, FindingKind::LockOrderCycle { .. })
            }
            RaceMutation::DoubleRelease => {
                matches!(finding.kind, FindingKind::LockMisuse { .. })
            }
        }
    }
}

/// Record one session: with `Some(m)`, run `m`'s scenario with the bug
/// present; with `None`, run every scenario in its correct form (the
/// clean-run baseline the kill matrix is measured against).
pub fn run(mutation: Option<RaceMutation>) -> SessionLog {
    let session = Session::start();
    match mutation {
        Some(RaceMutation::DroppedGuard) => dropped_guard(true),
        Some(RaceMutation::UnsortedStripes) => unsorted_stripes(true),
        Some(RaceMutation::MissingJoinEdge) => missing_join_edge(true),
        Some(RaceMutation::RecvReordered) => recv_reordered(true),
        Some(RaceMutation::DoubleRelease) => double_release(true),
        None => {
            dropped_guard(false);
            unsorted_stripes(false);
            missing_join_edge(false);
            recv_reordered(false);
            double_release(false);
        }
    }
    session.finish()
}

/// Two workers append to a shared report vector; the mutant skips the lock
/// on one of them.
fn dropped_guard(mutated: bool) {
    let lock = TracedMutex::new(());
    let report = ShadowCell::new();
    scope(|s| {
        let h1 = s.spawn(|_| {
            let _guard = lock.lock();
            report.write();
        });
        let h2 = s.spawn(|_| {
            if mutated {
                report.write();
            } else {
                let _guard = lock.lock();
                report.write();
            }
        });
        h1.join().unwrap();
        h2.join().unwrap();
    })
    .unwrap();
}

/// Two sequential paths nest a pair of stripe locks; the mutant inverts
/// the second path's order. (The paths never overlap in time — the cycle
/// is in the *order*, which is exactly what makes it a latent deadlock.)
fn unsorted_stripes(mutated: bool) {
    let stripe0 = TracedMutex::new(());
    let stripe1 = TracedMutex::new(());
    scope(|s| {
        let first = s.spawn(|_| {
            let _g0 = stripe0.lock();
            let _g1 = stripe1.lock();
        });
        first.join().unwrap();
        let second = s.spawn(|_| {
            if mutated {
                let _g1 = stripe1.lock();
                let _g0 = stripe0.lock();
            } else {
                let _g0 = stripe0.lock();
                let _g1 = stripe1.lock();
            }
        });
        second.join().unwrap();
    })
    .unwrap();
}

/// A worker fills a result slot; the mutant reads it after an atomic flag
/// spin but *before* the join, so no happens-before edge covers the read
/// (atomics are invisible to the detector by policy).
fn missing_join_edge(mutated: bool) {
    let slot = ShadowCell::new();
    let done = AtomicBool::new(false);
    scope(|s| {
        let h = s.spawn(|_| {
            slot.write();
            done.store(true, Ordering::Release);
        });
        if mutated {
            while !done.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            slot.read();
            h.join().unwrap();
        } else {
            h.join().unwrap();
            slot.read();
        }
    })
    .unwrap();
}

/// A producer writes a value then signals over a traced channel; the
/// mutant consumes the value before the recv that orders it.
fn recv_reordered(mutated: bool) {
    let value = ShadowCell::new();
    let ready = AtomicBool::new(false);
    let (tx, rx) = traced_channel::<u64>();
    scope(|s| {
        // The sender is moved into the worker; the flag crosses as a
        // shared borrow (senders are Send but not Sync).
        let ready = &ready;
        let h = s.spawn(move |_| {
            value.write();
            ready.store(true, Ordering::Release);
            tx.send(1).unwrap();
        });
        if mutated {
            while !ready.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            value.read();
            rx.recv().unwrap();
        } else {
            rx.recv().unwrap();
            value.read();
        }
        h.join().unwrap();
    })
    .unwrap();
}

/// A raw stripe lock is acquired and released once; the mutant releases it
/// a second time.
fn double_release(mutated: bool) {
    let stripe = fresh_lock();
    raw_acquire(stripe);
    raw_release(stripe);
    if mutated {
        raw_release(stripe);
    }
}
