//! The lock-free event log and the session that owns it.
//!
//! Recording must not perturb the concurrency it observes, so the log is a
//! preallocated slot array with a single atomic cursor: a recording thread
//! claims a slot with one `fetch_add`, writes the event, and flips the
//! slot's ready flag. No locks, no allocation, no syscalls on the hot path.
//!
//! Recording is scoped by a [`Session`]: events land in the log only while
//! a session is live, and [`Session::finish`] drains them into a
//! [`SessionLog`] for [`analyze`](crate::analyze::analyze). Sessions are
//! serialized process-wide by a static gate so concurrent tests cannot
//! interleave their events.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use crate::event::{EventKind, RaceEvent, SessionLog, ThreadId};

/// Log capacity in events. A full log drops further events (counted, not
/// silently) rather than blocking or reallocating.
const CAPACITY: usize = 1 << 20;

struct Slot {
    ready: AtomicBool,
    ev: UnsafeCell<MaybeUninit<RaceEvent>>,
}

// Safety: a slot's `ev` is written exactly once by the thread that claimed
// it via the cursor, and read only by the drain after `ready` is observed
// true with Acquire ordering (paired with the writer's Release store).
unsafe impl Sync for Slot {}

/// The process-wide event log.
struct EventLog {
    slots: Box<[Slot]>,
    cursor: AtomicUsize,
    dropped: AtomicUsize,
}

impl EventLog {
    fn new() -> Self {
        let mut slots = Vec::with_capacity(CAPACITY);
        for _ in 0..CAPACITY {
            slots.push(Slot {
                ready: AtomicBool::new(false),
                ev: UnsafeCell::new(MaybeUninit::uninit()),
            });
        }
        EventLog {
            slots: slots.into_boxed_slice(),
            cursor: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
        }
    }

    fn push(&self, ev: RaceEvent) {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        if idx >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[idx];
        // Safety: `idx` was claimed exclusively by this fetch_add, so no
        // other thread writes this slot; the drain reads it only after the
        // Release store below.
        unsafe { (*slot.ev.get()).write(ev) };
        slot.ready.store(true, Ordering::Release);
    }

    /// Drain all recorded events and reset the log for the next session.
    /// Caller must guarantee all recording threads have quiesced (the
    /// session discipline: every spawned thread joined before `finish`).
    fn drain(&self) -> SessionLog {
        let claimed = self.cursor.load(Ordering::Relaxed);
        let filled = claimed.min(self.slots.len());
        let mut events = Vec::with_capacity(filled);
        for slot in &self.slots[..filled] {
            // Under the quiescence contract every claimed slot is ready;
            // tolerate a straggler (drop it) rather than spin.
            if slot.ready.swap(false, Ordering::Acquire) {
                // Safety: ready was true, so the claiming thread's write
                // (Release) happens-before this read.
                events.push(unsafe { (*slot.ev.get()).assume_init() });
            }
        }
        let dropped = self.dropped.swap(0, Ordering::Relaxed) + (filled - events.len());
        self.cursor.store(0, Ordering::Relaxed);
        SessionLog { events, dropped }
    }
}

static LOG: OnceLock<EventLog> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);
static GATE: Mutex<()> = Mutex::new(());
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: std::cell::Cell<Option<u32>> = const { std::cell::Cell::new(None) };
}

/// The thread id of the current thread, assigning a fresh one on first use.
pub fn current_thread() -> ThreadId {
    TID.with(|t| {
        if let Some(id) = t.get() {
            ThreadId(id)
        } else {
            let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            ThreadId(id)
        }
    })
}

/// Pre-allocate a thread id for a thread about to be spawned, so the parent
/// can record the `Fork` edge before the child runs.
pub fn fresh_thread_id() -> ThreadId {
    ThreadId(NEXT_THREAD.fetch_add(1, Ordering::Relaxed))
}

/// Adopt a pre-allocated thread id as the current thread's identity. Called
/// first thing inside a traced spawn's closure.
pub fn adopt(id: ThreadId) {
    TID.with(|t| t.set(Some(id.0)));
}

/// Mint a process-unique id for a lock, cell, channel, or message.
pub fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Record one event on behalf of the current thread. A no-op when no
/// session is live, so traced primitives are always safe to use.
pub fn record(kind: EventKind) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let log = match LOG.get() {
        Some(log) => log,
        None => return,
    };
    log.push(RaceEvent {
        thread: current_thread(),
        kind,
    });
}

/// A live recording session. While a session exists, traced primitives
/// append to the event log; [`finish`](Session::finish) stops recording and
/// hands back the drained [`SessionLog`].
///
/// Discipline: the thread that starts the session must join every thread it
/// (transitively) spawned before calling `finish` — the drain assumes all
/// recorders have quiesced. Traced scopes enforce this structurally.
///
/// Sessions are serialized process-wide: starting one blocks until any
/// other session (e.g. in a concurrently running test) finishes.
#[derive(Debug)]
pub struct Session {
    _gate: MutexGuard<'static, ()>,
    done: bool,
}

impl Session {
    /// Start recording. Blocks until any other live session finishes.
    pub fn start() -> Session {
        let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        LOG.get_or_init(EventLog::new);
        ENABLED.store(true, Ordering::SeqCst);
        Session {
            _gate: gate,
            done: false,
        }
    }

    /// Stop recording and drain the log.
    pub fn finish(mut self) -> SessionLog {
        self.done = true;
        ENABLED.store(false, Ordering::SeqCst);
        LOG.get().map(EventLog::drain).unwrap_or_default()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.done {
            // Abandoned (e.g. a test panicked): disable and clear the log
            // so the next session starts clean.
            ENABLED.store(false, Ordering::SeqCst);
            if let Some(log) = LOG.get() {
                let _ = log.drain();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CellId, LockId};

    #[test]
    fn recording_outside_a_session_is_a_noop() {
        record(EventKind::Read { cell: CellId(1) });
        let session = Session::start();
        let log = session.finish();
        assert!(log.events.is_empty());
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn session_drains_in_claim_order() {
        let session = Session::start();
        record(EventKind::Acquire {
            lock: LockId(9),
            shared: false,
        });
        record(EventKind::Write { cell: CellId(4) });
        record(EventKind::Release { lock: LockId(9) });
        let log = session.finish();
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.dropped, 0);
        let tid = log.events[0].thread;
        assert!(log.events.iter().all(|e| e.thread == tid));
        assert_eq!(log.events[1].kind, EventKind::Write { cell: CellId(4) });
    }

    #[test]
    fn threads_get_distinct_ids_and_fork_preallocation_works() {
        let parent = current_thread();
        let child = fresh_thread_id();
        assert_ne!(parent, child);
        let session = Session::start();
        record(EventKind::Fork { child });
        let handle = std::thread::spawn(move || {
            adopt(child);
            record(EventKind::Write { cell: CellId(7) });
        });
        handle.join().unwrap();
        record(EventKind::Join { child });
        let log = session.finish();
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.events[0].thread, parent);
        assert_eq!(log.events[1].thread, child);
        assert_eq!(log.events[2].thread, parent);
    }
}
