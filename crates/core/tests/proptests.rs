//! Property-based tests for the arbitrary protocol: bicoterie intersection,
//! load/cost/availability invariants, Algorithm 1 validity, spec round-trips.

use arbitree_core::builder::{balanced, even_levels, mostly_read, mostly_write};
use arbitree_core::planner::{plan, reconfigure, Workload};
use arbitree_core::{
    read_quorum_count, read_quorums, write_quorums, ArbitraryProtocol, ArbitraryTree, TreeMetrics,
    TreeSpec,
};
use arbitree_quorum::{
    certifies_lower_bound, exact_availability, optimal_load, AliveSet, ReplicaControl, SetSystem,
};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates small valid arbitrary trees (non-decreasing level widths,
/// logical root) keeping the read-quorum count manageable.
fn small_tree() -> impl PropStrategy<Value = ArbitraryTree> {
    proptest::collection::vec(1usize..5, 1..5).prop_map(|mut widths| {
        widths.sort_unstable();
        let spec = TreeSpec::logical_root(widths);
        ArbitraryTree::from_spec(&spec).expect("sorted widths satisfy assumption 3.1")
    })
}

proptest! {
    #[test]
    fn bicoterie_intersection_for_arbitrary_valid_trees(t in small_tree()) {
        let reads: Vec<_> = read_quorums(&t).collect();
        let writes: Vec<_> = write_quorums(&t).collect();
        for r in &reads {
            for w in &writes {
                prop_assert!(r.intersects(w), "{r} misses {w} on {t}");
            }
        }
    }

    #[test]
    fn quorum_counts_match_facts(t in small_tree()) {
        // Fact 3.2.1 / 3.2.2.
        let m_r: u128 = t.physical_levels().iter()
            .map(|&k| t.level_physical(k) as u128).product();
        prop_assert_eq!(read_quorum_count(&t), Some(m_r));
        prop_assert_eq!(read_quorums(&t).count() as u128, m_r);
        prop_assert_eq!(write_quorums(&t).count(), t.physical_level_count());
    }

    #[test]
    fn closed_form_read_load_matches_lp(t in small_tree()) {
        // The paper's L_RD = 1/d must equal the LP-optimal load of the
        // enumerated read system.
        prop_assume!(read_quorum_count(&t).unwrap() <= 200);
        let system = SetSystem::new(
            t.universe(),
            read_quorums(&t).collect(),
        ).unwrap();
        let (lp_load, _) = optimal_load(&system);
        let closed = TreeMetrics::new(&t).read_load();
        prop_assert!((lp_load - closed).abs() < 1e-5,
            "LP {lp_load} vs closed form {closed} on {t}");
    }

    #[test]
    fn closed_form_write_load_matches_lp(t in small_tree()) {
        let system = SetSystem::new(
            t.universe(),
            write_quorums(&t).collect(),
        ).unwrap();
        let (lp_load, _) = optimal_load(&system);
        let closed = TreeMetrics::new(&t).write_load();
        prop_assert!((lp_load - closed).abs() < 1e-5,
            "LP {lp_load} vs closed form {closed} on {t}");
    }

    #[test]
    fn read_load_certificate(t in small_tree()) {
        // Appendix 6.1.2: y = 1/d on the first (narrowest by assumption 3.1)
        // physical level certifies L_RD >= 1/d.
        prop_assume!(read_quorum_count(&t).unwrap() <= 500);
        let system = SetSystem::new(t.universe(), read_quorums(&t).collect()).unwrap();
        let first = t.physical_levels()[0];
        let d = t.level_physical(first) as f64;
        let mut y = vec![0.0; t.replica_count()];
        for s in t.level_sites(first) {
            y[s.index()] = 1.0 / d;
        }
        prop_assert!(certifies_lower_bound(&system, &y, 1.0 / d));
    }

    #[test]
    fn write_load_certificate(t in small_tree()) {
        // Appendix 6.2.2: one replica per physical level, each valued
        // 1/|K_phy|, certifies L_WR >= 1/|K_phy|.
        let system = SetSystem::new(t.universe(), write_quorums(&t).collect()).unwrap();
        let k = t.physical_level_count() as f64;
        let mut y = vec![0.0; t.replica_count()];
        for &level in t.physical_levels() {
            y[t.level_sites(level)[0].index()] = 1.0 / k;
        }
        prop_assert!(certifies_lower_bound(&system, &y, 1.0 / k));
    }

    #[test]
    fn closed_form_availability_matches_exhaustive(t in small_tree(), p in 0.1f64..0.95) {
        prop_assume!(t.replica_count() <= 12);
        prop_assume!(read_quorum_count(&t).unwrap() <= 300);
        let m = TreeMetrics::new(&t);
        let reads = SetSystem::new(t.universe(), read_quorums(&t).collect()).unwrap();
        let writes = SetSystem::new(t.universe(), write_quorums(&t).collect()).unwrap();
        prop_assert!((exact_availability(&reads, p) - m.read_availability(p)).abs() < 1e-9);
        prop_assert!((exact_availability(&writes, p) - m.write_availability(p)).abs() < 1e-9);
    }

    #[test]
    fn picked_quorums_live_and_valid(t in small_tree(), seed in 0u64..500, dead in proptest::collection::vec(0u32..16, 0..4)) {
        prop_assume!(t.replica_count() <= 16);
        let proto = ArbitraryProtocol::new(t.clone());
        let mut alive = AliveSet::full(t.replica_count());
        for d in dead {
            if (d as usize) < t.replica_count() {
                alive.remove(arbitree_quorum::SiteId::new(d));
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(q) = proto.pick_read_quorum(alive, &mut rng) {
            prop_assert!(q.to_alive_set().is_subset_of(alive));
            prop_assert_eq!(q.len(), t.physical_level_count());
        }
        if let Some(q) = proto.pick_write_quorum(alive, &mut rng) {
            prop_assert!(q.to_alive_set().is_subset_of(alive));
            // A write quorum is exactly one full level.
            let lvl = t.site_level(q.iter().next().unwrap());
            prop_assert_eq!(q.len(), t.level_physical(lvl));
        }
        // When all sites are alive, picks always succeed.
        let full = AliveSet::full(t.replica_count());
        prop_assert!(proto.pick_read_quorum(full, &mut rng).is_some());
        prop_assert!(proto.pick_write_quorum(full, &mut rng).is_some());
    }

    #[test]
    fn spec_roundtrip(widths in proptest::collection::vec(1usize..30, 1..8)) {
        let mut w = widths;
        w.sort_unstable();
        let spec = TreeSpec::logical_root(w);
        let printed = spec.to_string();
        let parsed: TreeSpec = printed.parse().unwrap();
        prop_assert_eq!(parsed, spec);
    }

    #[test]
    fn algorithm1_output_valid_for_all_n(n in 65usize..2000) {
        let spec = balanced(n).unwrap();
        spec.validate().unwrap();
        prop_assert_eq!(spec.replica_count(), n);
        // |K_phy| = round(sqrt(n)).
        let k = (n as f64).sqrt().round() as usize;
        prop_assert_eq!(spec.physical_levels().len(), k);
        // Write load is 1/round(sqrt(n)).
        let t = ArbitraryTree::from_spec(&spec).unwrap();
        let m = TreeMetrics::new(&t);
        prop_assert!((m.write_load() - 1.0 / k as f64).abs() < 1e-12);
        prop_assert!((m.read_load() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn planner_endpoints(n in 4usize..40, p in 0.6f64..0.99) {
        // Pure reads → mostly-read; pure writes → many levels.
        let r = plan(n, Workload::new(1.0, p)).unwrap();
        prop_assert_eq!(r.physical_levels, 1);
        prop_assert_eq!(&r.spec, &mostly_read(n).unwrap());
        let w = plan(n, Workload::new(0.0, p)).unwrap();
        prop_assert!(w.physical_levels >= n / 4,
            "n={n}: write-only plan used {} levels", w.physical_levels);
    }

    #[test]
    fn reconfigure_is_consistent(n in 4usize..40, k1 in 1usize..8, k2 in 1usize..8) {
        prop_assume!(k1 <= n / 2 && k2 <= n / 2);
        let a = even_levels(n, k1).unwrap();
        let b = even_levels(n, k2).unwrap();
        let m = reconfigure(&a, &b).unwrap();
        prop_assert_eq!(m.total(), n);
        if k1 == k2 {
            prop_assert!(m.moves().is_empty());
        }
        // Reverse migration has the same number of moves.
        let back = reconfigure(&b, &a).unwrap();
        prop_assert_eq!(back.moves().len(), m.moves().len());
    }

    #[test]
    fn mostly_write_always_valid(n in 2usize..300) {
        let spec = mostly_write(n).unwrap();
        spec.validate().unwrap();
        prop_assert_eq!(spec.replica_count(), n);
        let t = ArbitraryTree::from_spec(&spec).unwrap();
        prop_assert!(t.min_level_width() >= 2);
        prop_assert!(t.max_level_width() <= 3);
    }

    #[test]
    fn expected_loads_bounded(t in small_tree(), p in 0.0f64..=1.0) {
        let m = TreeMetrics::new(&t);
        let er = m.expected_read_load(p);
        let ew = m.expected_write_load(p);
        prop_assert!(er >= m.read_load() - 1e-12 && er <= 1.0 + 1e-12);
        prop_assert!(ew >= m.write_load() - 1e-12 && ew <= 1.0 + 1e-12);
    }
}

proptest! {
    #[test]
    fn blocking_numbers_match_structure(t in small_tree()) {
        // Reads are blocked by killing the narrowest physical level (d
        // failures); writes by one failure per physical level (|K_phy|).
        use arbitree_quorum::{blocking_number, SetSystem};
        prop_assume!(t.replica_count() <= 16);
        prop_assume!(read_quorum_count(&t).unwrap() <= 400);
        let reads = SetSystem::new(t.universe(), read_quorums(&t).collect()).unwrap();
        let writes = SetSystem::new(t.universe(), write_quorums(&t).collect()).unwrap();
        prop_assert_eq!(blocking_number(&reads).0, t.min_level_width());
        prop_assert_eq!(blocking_number(&writes).0, t.physical_level_count());
    }
}

proptest! {
    #[test]
    fn gradual_migration_properties(
        widths_a in proptest::collection::vec(1usize..8, 1..6),
        widths_b_seed in proptest::collection::vec(1usize..8, 1..6),
        k in 1usize..5,
    ) {
        use arbitree_core::planner::gradual_migration;
        let mut a = widths_a;
        a.sort_unstable();
        let n: usize = a.iter().sum();
        // Derive a second partition of the same n from the seed widths.
        let mut b = Vec::new();
        let mut rem = n;
        for w in widths_b_seed {
            if rem == 0 { break; }
            let take = w.min(rem);
            b.push(take);
            rem -= take;
        }
        if rem > 0 {
            b.push(rem);
        }
        b.sort_unstable();
        let from = TreeSpec::logical_root(a);
        let to = TreeSpec::logical_root(b.clone());
        let steps = gradual_migration(&from, &to, k).unwrap();
        // Every intermediate validates and preserves n.
        for s in &steps {
            s.validate().unwrap();
            prop_assert_eq!(s.replica_count(), n);
        }
        // Terminates at the target width multiset.
        let last = steps.last().cloned().unwrap_or_else(|| from.clone());
        let mut got = last.physical_counts();
        got.sort_unstable();
        prop_assert_eq!(got, b);
    }
}
