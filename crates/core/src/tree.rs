//! The concrete arbitrary tree: nodes, parent/child structure, and the
//! level bookkeeping of §3.1 (`m_k`, `m_phy_k`, `m_log_k`, `K_phy`, `K_log`).

use crate::error::TreeError;
use crate::spec::TreeSpec;
use arbitree_quorum::{SiteId, Universe};
use std::fmt;

/// Identifier of a node within an [`ArbitraryTree`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// The dense index of this node.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Whether a node is a replica or a placeholder (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A physical node: corresponds to a replica of the system.
    Physical,
    /// A logical node: structural placeholder, holds no data.
    Logical,
}

/// One node of the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    id: NodeId,
    level: usize,
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// The replica this node hosts, if physical.
    site: Option<SiteId>,
}

impl Node {
    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The level (depth) of the node; the root is at level 0.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Physical or logical.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The parent node, or `None` for the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Child nodes, left to right.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// The replica hosted at this node (`Some` iff the node is physical).
    pub fn site(&self) -> Option<SiteId> {
        self.site
    }
}

/// An arbitrary tree: the logical organization of `n` replicas described in
/// §3.1 of the paper.
///
/// Construction happens via [`ArbitraryTree::from_spec`]; the per-level shape
/// comes from a validated [`TreeSpec`]. Within each level physical nodes come
/// first (left to right), then logical filler nodes; children are distributed
/// over the previous level's nodes as evenly as possible, left-heavy. Site
/// identifiers are assigned to physical nodes top-down, left-to-right, so the
/// mapping between tree positions and [`SiteId`]s is deterministic.
///
/// # Examples
///
/// ```
/// use arbitree_core::ArbitraryTree;
///
/// let tree = ArbitraryTree::from_spec(&"1-3-5".parse()?)?;
/// assert_eq!(tree.replica_count(), 8);
/// assert_eq!(tree.height(), 2);
/// assert_eq!(tree.physical_levels(), &[1, 2]);
/// assert_eq!(tree.min_level_width(), 3); // d
/// assert_eq!(tree.max_level_width(), 5); // e
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArbitraryTree {
    spec: TreeSpec,
    nodes: Vec<Node>,
    /// Node ids per level, physical nodes first.
    levels: Vec<Vec<NodeId>>,
    /// Sites per level (empty for logical levels), ascending SiteId.
    sites_by_level: Vec<Vec<SiteId>>,
    /// Level of each site, indexed by `SiteId::index`.
    site_levels: Vec<usize>,
    /// Ascending indices of physical levels (`K_phy`).
    physical_levels: Vec<usize>,
    /// Ascending indices of logical levels (`K_log`).
    logical_levels: Vec<usize>,
}

impl ArbitraryTree {
    /// Builds the tree for a validated spec.
    ///
    /// # Errors
    ///
    /// Returns any [`TreeError`] the spec's [`TreeSpec::validate`] reports.
    pub fn from_spec(spec: &TreeSpec) -> Result<Self, TreeError> {
        spec.validate()?;
        let mut nodes: Vec<Node> = Vec::new();
        let mut levels: Vec<Vec<NodeId>> = Vec::with_capacity(spec.levels().len());
        let mut sites_by_level: Vec<Vec<SiteId>> = Vec::with_capacity(spec.levels().len());
        let mut site_levels: Vec<usize> = Vec::new();
        let mut next_site = 0u32;

        for (k, level_spec) in spec.levels().iter().enumerate() {
            let mut ids = Vec::with_capacity(level_spec.total());
            let mut sites = Vec::with_capacity(level_spec.physical);
            for i in 0..level_spec.total() {
                let kind = if i < level_spec.physical {
                    NodeKind::Physical
                } else {
                    NodeKind::Logical
                };
                let site = match kind {
                    NodeKind::Physical => {
                        let s = SiteId::new(next_site);
                        next_site += 1;
                        site_levels.push(k);
                        sites.push(s);
                        Some(s)
                    }
                    NodeKind::Logical => None,
                };
                let id = NodeId(nodes.len());
                nodes.push(Node {
                    id,
                    level: k,
                    kind,
                    parent: None,
                    children: Vec::new(),
                    site,
                });
                ids.push(id);
            }
            // Attach to parents: distribute evenly, left-heavy.
            if k > 0 {
                let parents: &[NodeId] = &levels[k - 1];
                for (i, &child) in ids.iter().enumerate() {
                    let parent = parents[i % parents.len()];
                    nodes[child.index()].parent = Some(parent);
                    nodes[parent.index()].children.push(child);
                }
            }
            levels.push(ids);
            sites_by_level.push(sites);
        }

        Ok(ArbitraryTree {
            physical_levels: spec.physical_levels(),
            logical_levels: spec.logical_levels(),
            spec: spec.clone(),
            nodes,
            levels,
            sites_by_level,
            site_levels,
        })
    }

    /// Convenience: parse a spec string and build the tree.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] on parse failure or invalid shape.
    pub fn parse(spec: &str) -> Result<Self, TreeError> {
        Self::from_spec(&spec.parse()?)
    }

    /// The spec this tree was built from.
    pub fn spec(&self) -> &TreeSpec {
        &self.spec
    }

    /// Tree height `h`.
    pub fn height(&self) -> usize {
        self.spec.height()
    }

    /// Number of replicas `n`.
    pub fn replica_count(&self) -> usize {
        self.site_levels.len()
    }

    /// The replica universe `U` (sites `0..n`).
    pub fn universe(&self) -> Universe {
        Universe::new(self.replica_count())
    }

    /// All nodes, dense by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Node ids at `level` (physical first, then logical filler).
    pub fn level_nodes(&self, level: usize) -> &[NodeId] {
        &self.levels[level]
    }

    /// `m_k`: total node count at `level`.
    pub fn level_total(&self, level: usize) -> usize {
        self.levels[level].len()
    }

    /// `m_phy_k`: physical node count at `level`.
    pub fn level_physical(&self, level: usize) -> usize {
        self.sites_by_level[level].len()
    }

    /// `m_log_k`: logical node count at `level`.
    pub fn level_logical(&self, level: usize) -> usize {
        self.level_total(level) - self.level_physical(level)
    }

    /// The sites (replicas) hosted at `level`, ascending.
    pub fn level_sites(&self, level: usize) -> &[SiteId] {
        &self.sites_by_level[level]
    }

    /// `K_phy`: the physical levels, ascending.
    pub fn physical_levels(&self) -> &[usize] {
        &self.physical_levels
    }

    /// `K_log`: the logical levels, ascending.
    pub fn logical_levels(&self) -> &[usize] {
        &self.logical_levels
    }

    /// `|K_phy|` — also `m(W)`, the number of write quorums (fact 3.2.2).
    pub fn physical_level_count(&self) -> usize {
        self.physical_levels.len()
    }

    /// `d = min_k m_phy_k` over physical levels: the smallest physical-level
    /// width. Drives the read load `1/d` and the minimum write cost.
    pub fn min_level_width(&self) -> usize {
        self.physical_levels
            .iter()
            .map(|&k| self.level_physical(k))
            .min()
            .expect("validated tree has a physical level")
    }

    /// `e = max_k m_phy_k`: the largest physical-level width (maximum write
    /// cost).
    pub fn max_level_width(&self) -> usize {
        self.physical_levels
            .iter()
            .map(|&k| self.level_physical(k))
            .max()
            .expect("validated tree has a physical level")
    }

    /// The level hosting `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is not a replica of this tree.
    pub fn site_level(&self, site: SiteId) -> usize {
        self.site_levels[site.index()]
    }
}

impl fmt::Display for ArbitraryTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArbitraryTree({})", self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LevelSpec;

    fn figure_one() -> ArbitraryTree {
        // The paper's Figure 1 tree including the logical filler at level 2.
        ArbitraryTree::from_spec(&TreeSpec::new(vec![
            LevelSpec::logical(1),
            LevelSpec::physical(3),
            LevelSpec {
                physical: 5,
                logical: 4,
            },
        ]))
        .unwrap()
    }

    #[test]
    fn table_one_bookkeeping() {
        // Table 1 of the paper: m_k, m_phy_k, m_log_k for Figure 1.
        let t = figure_one();
        assert_eq!(t.level_total(0), 1);
        assert_eq!(t.level_physical(0), 0);
        assert_eq!(t.level_logical(0), 1);
        assert_eq!(t.level_total(1), 3);
        assert_eq!(t.level_physical(1), 3);
        assert_eq!(t.level_logical(1), 0);
        assert_eq!(t.level_total(2), 9);
        assert_eq!(t.level_physical(2), 5);
        assert_eq!(t.level_logical(2), 4);
        assert_eq!(t.replica_count(), 8);
        assert_eq!(t.physical_levels(), &[1, 2]);
        assert_eq!(t.logical_levels(), &[0]);
        assert_eq!(t.physical_level_count(), 2);
    }

    #[test]
    fn d_and_e_match_example() {
        let t = figure_one();
        assert_eq!(t.min_level_width(), 3);
        assert_eq!(t.max_level_width(), 5);
    }

    #[test]
    fn sites_assigned_top_down_left_right() {
        let t = figure_one();
        let l1: Vec<usize> = t.level_sites(1).iter().map(|s| s.index()).collect();
        let l2: Vec<usize> = t.level_sites(2).iter().map(|s| s.index()).collect();
        assert_eq!(l1, vec![0, 1, 2]);
        assert_eq!(l2, vec![3, 4, 5, 6, 7]);
        for s in 0..3 {
            assert_eq!(t.site_level(SiteId::new(s)), 1);
        }
        for s in 3..8 {
            assert_eq!(t.site_level(SiteId::new(s)), 2);
        }
    }

    #[test]
    fn parent_child_links_consistent() {
        let t = figure_one();
        assert!(t.root().parent().is_none());
        assert_eq!(t.root().children().len(), 3);
        let mut total_children = 0;
        for node in t.nodes() {
            for &c in node.children() {
                assert_eq!(t.node(c).parent(), Some(node.id()));
                assert_eq!(t.node(c).level(), node.level() + 1);
                total_children += 1;
            }
        }
        // Every non-root node has a parent.
        assert_eq!(total_children, t.nodes().len() - 1);
    }

    #[test]
    fn children_distributed_evenly() {
        let t = figure_one();
        // 9 level-2 nodes over 3 level-1 parents → 3 each.
        for &id in t.level_nodes(1) {
            assert_eq!(t.node(id).children().len(), 3);
        }
    }

    #[test]
    fn physical_nodes_have_sites_logical_do_not() {
        let t = figure_one();
        for node in t.nodes() {
            match node.kind() {
                NodeKind::Physical => assert!(node.site().is_some()),
                NodeKind::Logical => assert!(node.site().is_none()),
            }
        }
    }

    #[test]
    fn invalid_spec_propagates_error() {
        let err = ArbitraryTree::from_spec(&TreeSpec::logical_root([5, 3]));
        assert!(matches!(err, Err(TreeError::AssumptionViolated { .. })));
        assert!(matches!(
            ArbitraryTree::parse("nonsense"),
            Err(TreeError::ParseError { .. })
        ));
    }

    #[test]
    fn single_replica_tree() {
        let t = ArbitraryTree::parse("p:1").unwrap();
        assert_eq!(t.replica_count(), 1);
        assert_eq!(t.height(), 0);
        assert_eq!(t.min_level_width(), 1);
        assert_eq!(t.physical_levels(), &[0]);
        assert_eq!(t.site_level(SiteId::new(0)), 0);
    }

    #[test]
    fn display_shows_spec() {
        assert_eq!(figure_one().to_string(), "ArbitraryTree(1-3-5)");
    }

    #[test]
    fn universe_matches_replicas() {
        let t = figure_one();
        assert_eq!(t.universe().len(), 8);
    }
}
