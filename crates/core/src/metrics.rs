//! Closed-form metrics of the arbitrary protocol (§3.2.1–§3.2.3): costs,
//! availability, optimal system loads, and the paper's expected loads.

use crate::tree::ArbitraryTree;
use arbitree_quorum::{expected_read_load, expected_write_load, CostProfile};

/// The analytic metrics of an arbitrary tree, computed from its shape alone.
///
/// # Examples
///
/// ```
/// use arbitree_core::{ArbitraryTree, TreeMetrics};
///
/// // The paper's §3.4 example (Figure 1 / spec 1-3-5).
/// let tree = ArbitraryTree::parse("1-3-5")?;
/// let m = TreeMetrics::new(&tree);
/// assert_eq!(m.read_cost().avg, 2.0);
/// assert!((m.read_availability(0.7) - 0.97).abs() < 5e-3);
/// assert!((m.read_load() - 1.0 / 3.0).abs() < 1e-12);
/// assert_eq!(m.write_cost().avg, 4.0);
/// assert!((m.write_availability(0.7) - 0.45).abs() < 5e-3);
/// assert!((m.write_load() - 0.5).abs() < 1e-12);
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TreeMetrics<'a> {
    tree: &'a ArbitraryTree,
}

impl<'a> TreeMetrics<'a> {
    /// Wraps a tree for metric computation.
    pub fn new(tree: &'a ArbitraryTree) -> Self {
        TreeMetrics { tree }
    }

    /// Read communication cost `RD_cost = 1 + h − |K_log| = |K_phy|`
    /// (§3.2.1): one replica per physical level, always.
    pub fn read_cost(&self) -> CostProfile {
        CostProfile::flat(self.tree.physical_level_count() as f64)
    }

    /// Write communication cost (§3.2.2): minimum `d`, maximum `e`, and the
    /// uniform-strategy average `n / |K_phy|`.
    pub fn write_cost(&self) -> CostProfile {
        CostProfile {
            min: self.tree.min_level_width() as f64,
            max: self.tree.max_level_width() as f64,
            avg: self.tree.replica_count() as f64 / self.tree.physical_level_count() as f64,
        }
    }

    /// Read availability `∏_{k ∈ K_phy} (1 − (1−p)^{m_phy_k})` (§3.2.1):
    /// every physical level must have at least one live replica.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn read_availability(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.tree
            .physical_levels()
            .iter()
            .map(|&k| 1.0 - (1.0 - p).powi(self.tree.level_physical(k) as i32))
            .product()
    }

    /// Write failure probability `WR_fail = ∏_{k ∈ K_phy} (1 − p^{m_phy_k})`
    /// (§3.2.2): a write fails iff *every* physical level has at least one
    /// dead replica.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn write_failure(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.tree
            .physical_levels()
            .iter()
            .map(|&k| 1.0 - p.powi(self.tree.level_physical(k) as i32))
            .product()
    }

    /// Write availability `1 − WR_fail(p)` (§3.2.2).
    pub fn write_availability(&self, p: f64) -> f64 {
        1.0 - self.write_failure(p)
    }

    /// Optimal read load `L_RD = 1/d` (proved in appendix 6.1).
    pub fn read_load(&self) -> f64 {
        1.0 / self.tree.min_level_width() as f64
    }

    /// Optimal write load `L_WR = 1/(1 + h − |K_log|) = 1/|K_phy|`
    /// (proved in appendix 6.2).
    pub fn write_load(&self) -> f64 {
        1.0 / self.tree.physical_level_count() as f64
    }

    /// Expected read load at availability `p` (equation 3.2).
    pub fn expected_read_load(&self, p: f64) -> f64 {
        expected_read_load(self.read_availability(p), self.read_load())
    }

    /// Expected write load at availability `p` (equation 3.2).
    pub fn expected_write_load(&self, p: f64) -> f64 {
        expected_write_load(self.write_availability(p), self.write_load())
    }
}

/// Asymptotic write availability of an Algorithm-1 tree as `n → ∞` (§3.3):
/// `1 − (1 − p⁴)⁷`.
pub fn algorithm1_write_availability_limit(p: f64) -> f64 {
    1.0 - (1.0 - p.powi(4)).powi(7)
}

/// Asymptotic read availability of an Algorithm-1 tree as `n → ∞` (§3.3):
/// `(1 − (1−p)⁴)⁷`.
pub fn algorithm1_read_availability_limit(p: f64) -> f64 {
    (1.0 - (1.0 - p).powi(4)).powi(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_135() -> (ArbitraryTree, f64) {
        (ArbitraryTree::parse("1-3-5").unwrap(), 0.7)
    }

    #[test]
    fn paper_example_read_metrics() {
        let (t, p) = metrics_135();
        let m = TreeMetrics::new(&t);
        assert_eq!(m.read_cost().avg, 2.0);
        // RDavail(0.7) = (1-0.3^3)(1-0.3^5) = 0.973*0.99757 ≈ 0.9706
        let a = m.read_availability(p);
        assert!((a - 0.9706).abs() < 1e-3, "got {a}");
        assert!((m.read_load() - 1.0 / 3.0).abs() < 1e-12);
        // E[L_RD] = a*(1/3 - 1) + 1 ≈ 0.353
        assert!((m.expected_read_load(p) - 0.353).abs() < 2e-3);
    }

    #[test]
    fn paper_example_write_metrics() {
        let (t, p) = metrics_135();
        let m = TreeMetrics::new(&t);
        let c = m.write_cost();
        assert_eq!(c.min, 3.0);
        assert_eq!(c.max, 5.0);
        assert_eq!(c.avg, 4.0);
        // WRavail(0.7) = 1 - (1-0.7^3)(1-0.7^5) = 1 - 0.657*0.83193 ≈ 0.4534
        let a = m.write_availability(p);
        assert!((a - 0.4534).abs() < 1e-3, "got {a}");
        assert!((m.write_load() - 0.5).abs() < 1e-12);
        // E[L_WR] = a*0.5 + (1-a)*1 ≈ 0.7733 (paper rounds to 0.775)
        assert!((m.expected_write_load(p) - 0.7733).abs() < 2e-3);
    }

    #[test]
    fn mostly_read_behaves_like_rowa() {
        let t = ArbitraryTree::parse("1-10").unwrap();
        let m = TreeMetrics::new(&t);
        assert_eq!(m.read_cost().avg, 1.0);
        assert_eq!(m.write_cost().avg, 10.0);
        assert!((m.read_load() - 0.1).abs() < 1e-12);
        assert_eq!(m.write_load(), 1.0);
        let p = 0.8;
        assert!((m.read_availability(p) - (1.0 - 0.2f64.powi(10))).abs() < 1e-12);
        assert!((m.write_availability(p) - 0.8f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn mostly_write_metrics() {
        // n = 9 → spec 1-2-2-2-3: 4 physical levels.
        let t = ArbitraryTree::parse("1-2-2-2-3").unwrap();
        let m = TreeMetrics::new(&t);
        assert_eq!(m.write_cost().min, 2.0);
        assert_eq!(m.write_cost().max, 3.0);
        assert!((m.write_load() - 0.25).abs() < 1e-12);
        assert_eq!(m.read_cost().avg, 4.0);
        assert!((m.read_load() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn availability_bounds() {
        let (t, _) = metrics_135();
        let m = TreeMetrics::new(&t);
        assert_eq!(m.read_availability(1.0), 1.0);
        assert_eq!(m.read_availability(0.0), 0.0);
        assert_eq!(m.write_availability(1.0), 1.0);
        assert_eq!(m.write_availability(0.0), 0.0);
        assert_eq!(m.write_failure(1.0), 0.0);
    }

    #[test]
    fn more_levels_lower_write_load_higher_read_cost() {
        let shallow = ArbitraryTree::parse("1-8").unwrap();
        let deep = ArbitraryTree::parse("1-2-2-2-2").unwrap();
        let ms = TreeMetrics::new(&shallow);
        let md = TreeMetrics::new(&deep);
        assert!(md.write_load() < ms.write_load());
        assert!(md.read_cost().avg > ms.read_cost().avg);
        // Write availability improves with more levels.
        assert!(md.write_availability(0.8) > ms.write_availability(0.8));
        // Read availability deteriorates.
        assert!(md.read_availability(0.8) < ms.read_availability(0.8));
    }

    #[test]
    fn limits_formulae() {
        // §3.3: for p > 0.8 both limits are ≈ 1.
        for &p in &[0.85, 0.9, 0.95] {
            assert!(algorithm1_write_availability_limit(p) > 0.97, "p={p}");
            assert!(algorithm1_read_availability_limit(p) > 0.98, "p={p}");
        }
        // And they are proper probabilities over the whole range.
        for i in 0..=10 {
            let p = f64::from(i) / 10.0;
            let w = algorithm1_write_availability_limit(p);
            let r = algorithm1_read_availability_limit(p);
            assert!((0.0..=1.0).contains(&w));
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_p_rejected() {
        let (t, _) = metrics_135();
        let _ = TreeMetrics::new(&t).read_availability(1.2);
    }
}
