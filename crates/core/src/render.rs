//! ASCII rendering of arbitrary trees, in the style of the paper's
//! Figure 1: physical nodes shown as `(sN)` (their replica), logical nodes
//! as `[ ]`.

use crate::tree::{ArbitraryTree, NodeKind};
use std::fmt::Write as _;

/// Renders the tree level by level, with per-level annotations
/// (`m_k`, `m_phy_k`, `m_log_k`) matching Table 1's columns.
///
/// # Examples
///
/// ```
/// use arbitree_core::{render_tree, ArbitraryTree};
///
/// let tree = ArbitraryTree::parse("1-3-5")?;
/// let art = render_tree(&tree);
/// assert!(art.contains("level 0"));
/// assert!(art.contains("(s0)"));
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
pub fn render_tree(tree: &ArbitraryTree) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "tree {} (n = {})", tree.spec(), tree.replica_count());
    for k in 0..=tree.height() {
        let mut cells: Vec<String> = Vec::with_capacity(tree.level_total(k));
        for &id in tree.level_nodes(k) {
            let node = tree.node(id);
            match node.kind() {
                NodeKind::Physical => {
                    let site = node.site().expect("physical node hosts a site");
                    cells.push(format!("({site})"));
                }
                NodeKind::Logical => cells.push("[ ]".to_owned()),
            }
        }
        let tag = if tree.level_physical(k) > 0 {
            "phy"
        } else {
            "log"
        };
        let _ = writeln!(
            out,
            "level {k} [{tag}]  {}   (m={}, phy={}, log={})",
            cells.join(" "),
            tree.level_total(k),
            tree.level_physical(k),
            tree.level_logical(k),
        );
    }
    out
}

/// Renders the parent/child structure as an indented outline (one node per
/// line, children indented under their parent).
pub fn render_outline(tree: &ArbitraryTree) -> String {
    let mut out = String::new();
    render_node(tree, tree.root().id(), 0, &mut out);
    out
}

fn render_node(tree: &ArbitraryTree, id: crate::tree::NodeId, depth: usize, out: &mut String) {
    let node = tree.node(id);
    let label = match node.site() {
        Some(site) => format!("({site})"),
        None => "[logical]".to_owned(),
    };
    let _ = writeln!(out, "{}{label}", "  ".repeat(depth));
    for &child in node.children() {
        render_node(tree, child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_style_rendering() {
        let tree = ArbitraryTree::parse("1-3-5").unwrap();
        let art = render_tree(&tree);
        assert!(art.contains("tree 1-3-5 (n = 8)"));
        assert!(art.contains("level 0 [log]  [ ]"));
        assert!(art.contains("level 1 [phy]  (s0) (s1) (s2)"));
        assert!(art.contains("(m=5, phy=5, log=0)"));
    }

    #[test]
    fn outline_contains_every_node_once() {
        let tree = ArbitraryTree::parse("1-2-4").unwrap();
        let outline = render_outline(&tree);
        assert_eq!(outline.lines().count(), tree.nodes().len());
        for site in 0..tree.replica_count() {
            assert!(outline.contains(&format!("(s{site})")));
        }
    }

    #[test]
    fn outline_indents_by_level() {
        let tree = ArbitraryTree::parse("p:1-2").unwrap();
        let outline = render_outline(&tree);
        let lines: Vec<&str> = outline.lines().collect();
        assert_eq!(lines[0], "(s0)");
        assert!(lines[1].starts_with("  (s"));
    }

    #[test]
    fn logical_filler_rendered() {
        let tree = ArbitraryTree::from_spec(&crate::TreeSpec::new(vec![
            crate::LevelSpec::logical(1),
            crate::LevelSpec {
                physical: 2,
                logical: 1,
            },
        ]))
        .unwrap();
        let art = render_tree(&tree);
        assert!(art.contains("(s0) (s1) [ ]"));
    }
}
