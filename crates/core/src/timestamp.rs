//! Timestamps: `(version number, SID)` pairs ordering replica values.
//!
//! §2.2 of the paper: *"we consider timestamps that consist of a version
//! number and an SID which are used for read and write operations"*, and
//! §3.2.1: a read *"retrieves the value of data whose timestamp has the
//! highest version number and the lowest site identifier"*.

use arbitree_quorum::SiteId;
use std::cmp::Ordering;
use std::fmt;

/// A replica-value timestamp.
///
/// Ordering follows the paper's read rule: a timestamp is *greater* (more
/// recent, i.e. the one a read returns) when its version number is higher,
/// or — on equal versions — when its site identifier is **lower**.
///
/// # Examples
///
/// ```
/// use arbitree_core::Timestamp;
/// use arbitree_quorum::SiteId;
///
/// let a = Timestamp::new(3, SiteId::new(5));
/// let b = Timestamp::new(3, SiteId::new(2));
/// let c = Timestamp::new(4, SiteId::new(9));
/// assert!(b > a); // same version, lower SID wins
/// assert!(c > b); // higher version wins
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timestamp {
    version: u64,
    sid: SiteId,
}

impl Timestamp {
    /// The timestamp of a freshly-initialized, never-written replica.
    pub const ZERO: Timestamp = Timestamp {
        version: 0,
        sid: SiteId::new(0),
    };

    /// Creates a timestamp from a version number and the writing site's SID.
    pub const fn new(version: u64, sid: SiteId) -> Self {
        Timestamp { version, sid }
    }

    /// The version number.
    pub const fn version(self) -> u64 {
        self.version
    }

    /// The SID of the site that issued the write.
    pub const fn sid(self) -> SiteId {
        self.sid
    }

    /// The timestamp a write issued by `sid` produces after observing this
    /// one: version incremented by one (§3.2.2).
    pub fn next(self, sid: SiteId) -> Timestamp {
        Timestamp {
            version: self.version + 1,
            sid,
        }
    }
}

impl Default for Timestamp {
    fn default() -> Self {
        Timestamp::ZERO
    }
}

impl PartialOrd for Timestamp {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Timestamp {
    fn cmp(&self, other: &Self) -> Ordering {
        // Higher version first; on ties the LOWER SID is the greater
        // (preferred) timestamp, per §3.2.1.
        self.version
            .cmp(&other.version)
            .then_with(|| other.sid.cmp(&self.sid))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}@{}", self.version, self.sid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_minimal() {
        let any = Timestamp::new(1, SiteId::new(3));
        assert!(Timestamp::ZERO < any);
        assert_eq!(Timestamp::default(), Timestamp::ZERO);
    }

    #[test]
    fn higher_version_wins() {
        let old = Timestamp::new(2, SiteId::new(0));
        let new = Timestamp::new(3, SiteId::new(9));
        assert!(new > old);
    }

    #[test]
    fn lower_sid_wins_on_equal_version() {
        let a = Timestamp::new(5, SiteId::new(1));
        let b = Timestamp::new(5, SiteId::new(2));
        assert!(a > b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn next_increments_version_and_stamps_sid() {
        let t = Timestamp::new(7, SiteId::new(4));
        let n = t.next(SiteId::new(2));
        assert_eq!(n.version(), 8);
        assert_eq!(n.sid(), SiteId::new(2));
        assert!(n > t);
    }

    #[test]
    fn max_of_collection_is_read_result() {
        // A read gathers timestamps from a quorum and returns the max.
        let ts = [
            Timestamp::new(4, SiteId::new(7)),
            Timestamp::new(4, SiteId::new(3)),
            Timestamp::new(2, SiteId::new(0)),
        ];
        let winner = ts.iter().max().unwrap();
        assert_eq!(*winner, Timestamp::new(4, SiteId::new(3)));
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp::new(3, SiteId::new(1)).to_string(), "v3@s1");
    }
}
