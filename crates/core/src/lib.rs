//! # arbitree-core
//!
//! The arbitrary tree-structured replica control protocol of Bahsoun,
//! Basmadjian and Guerraoui (ICDCS 2008) — the primary contribution of the
//! paper this workspace reproduces.
//!
//! ## The protocol in one paragraph
//!
//! Replicas are organized into a tree whose nodes are either **physical**
//! (a replica) or **logical** (a placeholder). A level containing at least
//! one physical node is a *physical level*. A **read quorum** takes any one
//! physical node from *every* physical level; a **write quorum** takes *all*
//! physical nodes of any *one* physical level. Every read quorum therefore
//! intersects every write quorum (a bicoterie), giving one-copy equivalence,
//! while the tree *shape* becomes a tuning knob: one physical level behaves
//! like ROWA (`MOSTLY-READ`); `n/2` levels of two give write cost 2
//! (`MOSTLY-WRITE`); Algorithm 1's `√n` levels give write load `1/√n`,
//! read cost `√n`, and read load `1/4` (`ARBITRARY`).
//!
//! ## Crate layout
//!
//! * [`TreeSpec`] / [`LevelSpec`] — declarative tree shapes, the paper's
//!   `1-3-5` notation, and assumption 3.1 validation;
//! * [`ArbitraryTree`] — the concrete node structure with the §3.1
//!   level bookkeeping (`m_k`, `m_phy_k`, `K_phy`, …);
//! * [`quorums`] — read/write quorum enumeration (facts 3.2.1, 3.2.2);
//! * [`TreeMetrics`] — closed-form cost/availability/load (§3.2, appendix);
//! * [`ArbitraryProtocol`] — the [`arbitree_quorum::ReplicaControl`]
//!   implementation used by the simulator;
//! * [`builder`] — `MOSTLY-READ`, `MOSTLY-WRITE`, Algorithm 1, complete
//!   binary shapes;
//! * [`planner`] — frequency-driven shape selection and reconfiguration;
//! * [`Timestamp`] — `(version, SID)` ordering for replica values.
//!
//! ## Example
//!
//! ```
//! use arbitree_core::{ArbitraryProtocol, ArbitraryTree, TreeMetrics};
//! use arbitree_quorum::ReplicaControl;
//!
//! // The paper's running example: 8 replicas shaped 1-3-5.
//! let tree = ArbitraryTree::parse("1-3-5")?;
//! let metrics = TreeMetrics::new(&tree);
//! assert_eq!(metrics.read_cost().avg, 2.0);       // RD_cost = |K_phy|
//! assert_eq!(metrics.write_cost().avg, 4.0);      // n / |K_phy|
//! assert_eq!(metrics.read_load(), 1.0 / 3.0);     // 1/d
//! assert_eq!(metrics.write_load(), 0.5);          // 1/|K_phy|
//!
//! let protocol = ArbitraryProtocol::new(tree);
//! assert_eq!(protocol.read_quorums().count(), 15); // m(R) = 3·5
//! # Ok::<(), arbitree_core::TreeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod collections;
mod error;
mod metrics;
pub mod planner;
mod protocol;
pub mod quorums;
mod render;
mod spec;
mod timestamp;
mod tree;

pub use collections::{DetMap, DetSet};
pub use error::TreeError;
pub use metrics::{
    algorithm1_read_availability_limit, algorithm1_write_availability_limit, TreeMetrics,
};
pub use protocol::ArbitraryProtocol;
pub use quorums::{read_quorum_count, read_quorums, write_quorum_count, write_quorums};
pub use render::{render_outline, render_tree};
pub use spec::{LevelSpec, TreeSpec};
pub use timestamp::Timestamp;
pub use tree::{ArbitraryTree, Node, NodeId, NodeKind};
