//! Deterministic collections: drop-in replacements for the `HashMap` /
//! `HashSet` patterns the simulator uses, with **insertion-ordered,
//! replay-stable iteration**.
//!
//! `std::collections::HashMap` randomizes its hash seed per process, so any
//! code path whose *behaviour* depends on map iteration order (message send
//! order, retry ordering, metric tie-breaking) silently breaks the
//! simulator's headline guarantee: a run is a pure function of its seed and
//! replays byte-for-byte. [`DetMap`] and [`DetSet`] make that guarantee
//! structural instead of conventional:
//!
//! * iteration yields entries in **insertion order** — the order the
//!   deterministic simulation produced them, stable across processes,
//!   platforms and `RUSTFLAGS`;
//! * lookup goes through a `BTreeMap` index (`O(log n)`, no hashing, no
//!   per-process seed);
//! * equality is **content-based** (key-sorted), so two runs that assembled
//!   the same state in different orders still compare equal.
//!
//! The `arbitree-lint` rule **D001** flags raw `HashMap`/`HashSet` in
//! replay-critical crates and points here.

use std::collections::BTreeMap;
use std::fmt;

/// An insertion-ordered map with `BTreeMap`-backed lookup and deterministic
/// iteration. See the [module docs](self) for why this exists.
///
/// Keys must be `Ord + Clone` (the index stores a second copy of each key).
/// Removal is `O(n)` (entries shift to preserve insertion order), which is
/// the right trade-off for the simulator's small, short-lived maps.
///
/// # Examples
///
/// ```
/// use arbitree_core::DetMap;
///
/// let mut m = DetMap::new();
/// m.insert("b", 2);
/// m.insert("a", 1);
/// // Iteration is insertion-ordered, not key-ordered:
/// let keys: Vec<_> = m.keys().copied().collect();
/// assert_eq!(keys, ["b", "a"]);
/// // Equality is content-based:
/// let mut n = DetMap::new();
/// n.insert("a", 1);
/// n.insert("b", 2);
/// assert_eq!(m, n);
/// ```
#[derive(Clone)]
pub struct DetMap<K, V> {
    entries: Vec<(K, V)>,
    index: BTreeMap<K, usize>,
}

impl<K, V> Default for DetMap<K, V> {
    fn default() -> Self {
        DetMap {
            entries: Vec::new(),
            index: BTreeMap::new(),
        }
    }
}

impl<K, V> DetMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DetMap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterates over values mutably, in insertion order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }
}

impl<K: Ord + Clone, V> DetMap<K, V> {
    /// Inserts `value` under `key`, returning the previous value if the key
    /// was present (the entry keeps its original insertion position, like
    /// `HashMap::insert`).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.index.get(&key) {
            Some(&i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            None => {
                self.index.insert(key.clone(), self.entries.len());
                self.entries.push((key, value));
                None
            }
        }
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.index.get(key).map(|&i| &self.entries[i].1)
    }

    /// Mutable access to the value stored under `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.index.get(key) {
            Some(&i) => Some(&mut self.entries[i].1),
            None => None,
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Removes `key`, returning its value. Later entries shift down one
    /// slot so iteration order stays the insertion order of the survivors.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let pos = self.index.remove(key)?;
        let (_, value) = self.entries.remove(pos);
        for slot in self.index.values_mut() {
            if *slot > pos {
                *slot -= 1;
            }
        }
        Some(value)
    }

    /// In-place access to the entry under `key`, inserting on demand — the
    /// subset of `HashMap`'s entry API the workspace uses.
    pub fn entry(&mut self, key: K) -> Entry<'_, K, V> {
        Entry { map: self, key }
    }
}

/// A view into a single [`DetMap`] entry, which may be vacant.
pub struct Entry<'a, K, V> {
    map: &'a mut DetMap<K, V>,
    key: K,
}

impl<'a, K: Ord + Clone, V> Entry<'a, K, V> {
    /// Inserts `default` if the entry is vacant; returns the value.
    pub fn or_insert(self, default: V) -> &'a mut V {
        self.or_insert_with(|| default)
    }

    /// Inserts `default()` if the entry is vacant; returns the value.
    pub fn or_insert_with(self, default: impl FnOnce() -> V) -> &'a mut V {
        let pos = match self.map.index.get(&self.key) {
            Some(&i) => i,
            None => {
                let i = self.map.entries.len();
                self.map.index.insert(self.key.clone(), i);
                self.map.entries.push((self.key, default()));
                i
            }
        };
        &mut self.map.entries[pos].1
    }

    /// Inserts `V::default()` if the entry is vacant; returns the value.
    pub fn or_default(self) -> &'a mut V
    where
        V: Default,
    {
        self.or_insert_with(V::default)
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for DetMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: fmt::Debug, V> fmt::Debug for Entry<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Entry").field("key", &self.key).finish()
    }
}

/// Content-based equality: same key set, same value per key — independent
/// of insertion order, matching `HashMap` semantics.
impl<K: Ord, V: PartialEq> PartialEq for DetMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .index
                .iter()
                .zip(other.index.iter())
                .all(|((ka, &ia), (kb, &ib))| ka == kb && self.entries[ia].1 == other.entries[ib].1)
    }
}

impl<K: Ord, V: Eq> Eq for DetMap<K, V> {}

impl<K: Ord + Clone, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = DetMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K: Ord + Clone, V> Extend<(K, V)> for DetMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<K, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a, K, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// An insertion-ordered set with deterministic iteration — the companion of
/// [`DetMap`] for `HashSet` call sites.
///
/// # Examples
///
/// ```
/// use arbitree_core::DetSet;
///
/// let mut s = DetSet::new();
/// assert!(s.insert(3));
/// assert!(s.insert(1));
/// assert!(!s.insert(3)); // already present
/// let order: Vec<_> = s.iter().copied().collect();
/// assert_eq!(order, [3, 1]); // insertion order, every run
/// ```
#[derive(Clone)]
pub struct DetSet<T> {
    map: DetMap<T, ()>,
}

impl<T> Default for DetSet<T> {
    fn default() -> Self {
        DetSet {
            map: DetMap::default(),
        }
    }
}

impl<T> DetSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        DetSet::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterates over members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.map.keys()
    }
}

impl<T: Ord + Clone> DetSet<T> {
    /// Inserts `value`; returns `true` if it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        self.map.insert(value, ()).is_none()
    }

    /// Removes `value`; returns `true` if it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        self.map.remove(value).is_some()
    }

    /// Membership test.
    pub fn contains(&self, value: &T) -> bool {
        self.map.contains_key(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for DetSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T: Ord> PartialEq for DetSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl<T: Ord> Eq for DetSet<T> {}

impl<T: Ord + Clone> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = DetSet::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

impl<T: Ord + Clone> Extend<T> for DetSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<T> IntoIterator for DetSet<T> {
    type Item = T;
    type IntoIter = std::iter::Map<std::vec::IntoIter<(T, ())>, fn((T, ())) -> T>;

    fn into_iter(self) -> Self::IntoIter {
        self.map.entries.into_iter().map(|(t, ())| t)
    }
}

impl<'a, T> IntoIterator for &'a DetSet<T> {
    type Item = &'a T;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (T, ())>, fn(&'a (T, ())) -> &'a T>;

    fn into_iter(self) -> Self::IntoIter {
        self.map.entries.iter().map(|(t, ())| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = DetMap::new();
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(2, "b"), None);
        assert_eq!(m.insert(1, "c"), Some("a"));
        assert_eq!(m.get(&1), Some(&"c"));
        assert_eq!(m.len(), 2);
        assert!(m.contains_key(&2));
        assert_eq!(m.remove(&1), Some("c"));
        assert_eq!(m.remove(&1), None);
        assert!(!m.contains_key(&1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut m = DetMap::new();
        for k in [5u32, 1, 9, 3] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, [5, 1, 9, 3]);
        let vals: Vec<u32> = m.values().copied().collect();
        assert_eq!(vals, [50, 10, 90, 30]);
    }

    #[test]
    fn remove_preserves_residual_order() {
        let mut m = DetMap::new();
        for k in [5u32, 1, 9, 3] {
            m.insert(k, ());
        }
        m.remove(&1);
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, [5, 9, 3]);
        // Index stays consistent after the shift.
        m.insert(7, ());
        assert!(m.contains_key(&3) && m.contains_key(&7));
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, [5, 9, 3, 7]);
    }

    #[test]
    fn reinsert_keeps_original_position() {
        let mut m = DetMap::new();
        m.insert("x", 1);
        m.insert("y", 2);
        m.insert("x", 3);
        let pairs: Vec<(&&str, &i32)> = m.iter().collect();
        assert_eq!(pairs, [(&"x", &3), (&"y", &2)]);
    }

    #[test]
    fn entry_api() {
        let mut m: DetMap<u32, u64> = DetMap::new();
        *m.entry(4).or_insert(0) += 1;
        *m.entry(4).or_insert(0) += 1;
        *m.entry(9).or_default() += 5;
        assert_eq!(m.get(&4), Some(&2));
        assert_eq!(m.get(&9), Some(&5));
        let v = m.entry(11).or_insert_with(|| 42);
        assert_eq!(*v, 42);
    }

    #[test]
    fn equality_is_order_insensitive() {
        let a: DetMap<u32, &str> = [(1, "a"), (2, "b")].into_iter().collect();
        let b: DetMap<u32, &str> = [(2, "b"), (1, "a")].into_iter().collect();
        assert_eq!(a, b);
        let c: DetMap<u32, &str> = [(1, "a"), (2, "z")].into_iter().collect();
        assert_ne!(a, c);
        let d: DetMap<u32, &str> = [(1, "a")].into_iter().collect();
        assert_ne!(a, d);
    }

    #[test]
    fn debug_output_is_stable() {
        let mut m = DetMap::new();
        m.insert(2, "b");
        m.insert(1, "a");
        assert_eq!(format!("{m:?}"), r#"{2: "b", 1: "a"}"#);
        let mut s = DetSet::new();
        s.insert(2);
        s.insert(1);
        assert_eq!(format!("{s:?}"), "{2, 1}");
    }

    #[test]
    fn clear_and_empty() {
        let mut m: DetMap<u8, u8> = [(1, 1)].into_iter().collect();
        assert!(!m.is_empty());
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn into_iter_owned_and_borrowed() {
        let m: DetMap<u32, u32> = [(3, 30), (1, 10)].into_iter().collect();
        let borrowed: Vec<(u32, u32)> = (&m).into_iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(borrowed, [(3, 30), (1, 10)]);
        let owned: Vec<(u32, u32)> = m.into_iter().collect();
        assert_eq!(owned, [(3, 30), (1, 10)]);
    }

    #[test]
    fn values_mut_updates_in_place() {
        let mut m: DetMap<u32, u32> = [(1, 1), (2, 2)].into_iter().collect();
        for v in m.values_mut() {
            *v *= 10;
        }
        assert_eq!(m.get(&2), Some(&20));
    }

    #[test]
    fn set_semantics() {
        let mut s = DetSet::new();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
        assert!(s.remove(&7));
        assert!(!s.remove(&7));
        assert!(s.is_empty());
    }

    #[test]
    fn set_iteration_and_collect() {
        let s: DetSet<u32> = [9, 2, 5, 2].into_iter().collect();
        let order: Vec<u32> = s.iter().copied().collect();
        assert_eq!(order, [9, 2, 5]);
        assert_eq!(s.len(), 3);
        let owned: Vec<u32> = s.into_iter().collect();
        assert_eq!(owned, [9, 2, 5]);
    }

    #[test]
    fn set_equality_is_order_insensitive() {
        let a: DetSet<u32> = [1, 2, 3].into_iter().collect();
        let b: DetSet<u32> = [3, 1, 2].into_iter().collect();
        assert_eq!(a, b);
        let c: DetSet<u32> = [1, 2].into_iter().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn large_map_index_consistency() {
        // Interleaved inserts/removes keep lookup and order agreeing.
        let mut m = DetMap::new();
        for i in 0..100u32 {
            m.insert(i, i);
        }
        for i in (0..100).step_by(3) {
            m.remove(&i);
        }
        for (k, v) in m.iter() {
            assert_eq!(k, v);
            assert_ne!(k % 3, 0);
        }
        assert_eq!(m.len(), 66);
        for i in 0..100u32 {
            assert_eq!(m.contains_key(&i), i % 3 != 0);
            if i % 3 != 0 {
                assert_eq!(m.get(&i), Some(&i));
            }
        }
    }
}
