//! Tree-shape constructors (§3.3 and §4): the `MOSTLY-READ`, `MOSTLY-WRITE`
//! and Algorithm-1 (`ARBITRARY`) configurations, plus generic even-split and
//! complete-binary shapes.

use crate::error::TreeError;
use crate::spec::TreeSpec;

/// Integer square root by rounding (`round(√n)`), used by Algorithm 1's
/// `|K_phy| = √n`.
fn rounded_sqrt(n: usize) -> usize {
    (n as f64).sqrt().round() as usize
}

/// The `MOSTLY-READ` configuration (§4): a logical root and **one** physical
/// level holding all `n` replicas. Behaves like ROWA: read cost 1, write
/// cost `n`.
///
/// # Errors
///
/// Returns [`TreeError::UnsupportedReplicaCount`] for `n == 0`.
///
/// # Examples
///
/// ```
/// use arbitree_core::builder::mostly_read;
///
/// assert_eq!(mostly_read(8)?.to_string(), "1-8");
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
pub fn mostly_read(n: usize) -> Result<TreeSpec, TreeError> {
    if n == 0 {
        return Err(TreeError::UnsupportedReplicaCount {
            n,
            reason: "need at least one replica",
        });
    }
    let spec = TreeSpec::logical_root([n]);
    spec.validate()?;
    Ok(spec)
}

/// The `MOSTLY-WRITE` configuration (§4): a logical root over
/// `⌊(n−1)/2⌋` physical levels of two replicas each for odd `n` (the last
/// level takes three to absorb the odd replica), or `n/2` levels of two for
/// even `n`. Write cost is 2 (3 worst case), read cost `|K_phy|`.
///
/// # Errors
///
/// Returns [`TreeError::UnsupportedReplicaCount`] for `n < 2`.
///
/// # Examples
///
/// ```
/// use arbitree_core::builder::mostly_write;
///
/// assert_eq!(mostly_write(9)?.to_string(), "1-2-2-2-3");
/// assert_eq!(mostly_write(8)?.to_string(), "1-2-2-2-2");
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
pub fn mostly_write(n: usize) -> Result<TreeSpec, TreeError> {
    if n < 2 {
        return Err(TreeError::UnsupportedReplicaCount {
            n,
            reason: "mostly-write needs at least two replicas",
        });
    }
    let spec = if n.is_multiple_of(2) {
        TreeSpec::logical_root(std::iter::repeat_n(2, n / 2))
    } else {
        let levels = (n - 1) / 2;
        let mut counts = vec![2; levels];
        *counts.last_mut().expect("levels >= 1") = 3;
        TreeSpec::logical_root(counts)
    };
    spec.validate()?;
    Ok(spec)
}

/// Distributes `n` replicas over exactly `k` physical levels (logical root),
/// as evenly as possible with the larger levels last — the most general
/// "spectrum knob" between [`mostly_read`] (`k = 1`) and [`mostly_write`]
/// (`k ≈ n/2`).
///
/// # Errors
///
/// Returns [`TreeError::UnsupportedReplicaCount`] if `k == 0` or `k > n`.
///
/// # Examples
///
/// ```
/// use arbitree_core::builder::even_levels;
///
/// assert_eq!(even_levels(8, 3)?.to_string(), "1-2-3-3");
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
pub fn even_levels(n: usize, k: usize) -> Result<TreeSpec, TreeError> {
    if k == 0 || k > n {
        return Err(TreeError::UnsupportedReplicaCount {
            n,
            reason: "level count must satisfy 1 <= k <= n",
        });
    }
    let base = n / k;
    let rem = n % k;
    let counts = (0..k).map(|i| if i < k - rem { base } else { base + 1 });
    let spec = TreeSpec::logical_root(counts);
    spec.validate()?;
    Ok(spec)
}

/// Algorithm 1 (§3.3): the balanced `ARBITRARY` configuration.
///
/// For `n > 64` (the algorithm's stated domain): `|K_phy| = round(√n)`
/// physical levels under a logical root; the first seven levels hold four
/// replicas each and the remaining `n − 28` replicas are spread evenly over
/// the other `√n − 7` levels (larger levels last, preserving assumption
/// 3.1). This yields write load `1/√n`, read cost `√n`, read load `1/4`.
///
/// For `32 < n ≤ 64` the paper's §3.3 guidance is applied: seven levels of
/// four plus one level holding the remaining `n − 28`.
///
/// For `n ≤ 32` (outside the paper's stated domain) we fall back to
/// [`even_levels`] with `k = round(√n)` so the function is total for
/// `n ≥ 1`; this fallback is documented in DESIGN.md.
///
/// # Errors
///
/// Returns [`TreeError::UnsupportedReplicaCount`] for `n == 0`.
///
/// # Examples
///
/// ```
/// use arbitree_core::builder::balanced;
///
/// let spec = balanced(100)?;
/// assert_eq!(spec.to_string(), "1-4-4-4-4-4-4-4-24-24-24");
/// assert_eq!(spec.replica_count(), 100);
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
pub fn balanced(n: usize) -> Result<TreeSpec, TreeError> {
    if n == 0 {
        return Err(TreeError::UnsupportedReplicaCount {
            n,
            reason: "need at least one replica",
        });
    }
    if n <= 32 {
        return even_levels(n, rounded_sqrt(n).max(1));
    }
    if n <= 64 {
        let mut counts = vec![4; 7];
        counts.push(n - 28);
        let spec = TreeSpec::logical_root(counts);
        spec.validate()?;
        return Ok(spec);
    }
    let k = rounded_sqrt(n);
    debug_assert!(k > 7, "n > 64 implies round(sqrt(n)) >= 8");
    let rest_levels = k - 7;
    let rest = n - 28;
    let base = rest / rest_levels;
    let rem = rest % rest_levels;
    let mut counts = vec![4; 7];
    counts.extend((0..rest_levels).map(|i| {
        if i < rest_levels - rem {
            base
        } else {
            base + 1
        }
    }));
    let spec = TreeSpec::logical_root(counts);
    spec.validate()?;
    Ok(spec)
}

/// A fully physical complete binary tree of the given height: levels
/// `1, 2, 4, …, 2^h`, every node a replica (`n = 2^(h+1) − 1`). This is the
/// substrate of the `UNMODIFIED` configuration (§4) and of the
/// Agrawal–El Abbadi baseline.
///
/// # Errors
///
/// Returns [`TreeError::UnsupportedReplicaCount`] if the height would
/// overflow (`height ≥ 63`).
///
/// # Examples
///
/// ```
/// use arbitree_core::builder::complete_binary;
///
/// let spec = complete_binary(2)?;
/// assert_eq!(spec.to_string(), "p:1-2-4");
/// assert_eq!(spec.replica_count(), 7);
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
pub fn complete_binary(height: usize) -> Result<TreeSpec, TreeError> {
    if height >= 63 {
        return Err(TreeError::UnsupportedReplicaCount {
            n: usize::MAX,
            reason: "binary tree height must be < 63",
        });
    }
    let spec = TreeSpec::physical_root((0..=height).map(|k| 1usize << k));
    spec.validate()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TreeMetrics;
    use crate::tree::ArbitraryTree;

    #[test]
    fn mostly_read_shape() {
        let s = mostly_read(12).unwrap();
        assert_eq!(s.physical_levels(), vec![1]);
        assert_eq!(s.replica_count(), 12);
        assert!(mostly_read(0).is_err());
    }

    #[test]
    fn mostly_write_even_and_odd() {
        let odd = mostly_write(9).unwrap();
        assert_eq!(odd.physical_counts(), vec![2, 2, 2, 3]);
        assert_eq!(odd.replica_count(), 9);
        let even = mostly_write(10).unwrap();
        assert_eq!(even.physical_counts(), vec![2; 5]);
        assert!(mostly_write(1).is_err());
        // n=3 → single level of 3.
        assert_eq!(mostly_write(3).unwrap().physical_counts(), vec![3]);
        // n=2 → single level of 2.
        assert_eq!(mostly_write(2).unwrap().physical_counts(), vec![2]);
    }

    #[test]
    fn mostly_write_write_load_matches_paper() {
        // Paper: MOSTLY-WRITE write load = 2/(n-1) for odd n.
        for n in [9usize, 15, 25, 101] {
            let t = ArbitraryTree::from_spec(&mostly_write(n).unwrap()).unwrap();
            let m = TreeMetrics::new(&t);
            let expect = 2.0 / (n as f64 - 1.0);
            assert!(
                (m.write_load() - expect).abs() < 1e-12,
                "n={n}: {} vs {expect}",
                m.write_load()
            );
            // And read load = 1/2.
            assert_eq!(m.read_load(), 0.5);
        }
    }

    #[test]
    fn even_levels_distributes_non_decreasing() {
        let s = even_levels(10, 4).unwrap();
        assert_eq!(s.physical_counts(), vec![2, 2, 3, 3]);
        assert_eq!(s.replica_count(), 10);
        assert!(even_levels(3, 5).is_err());
        assert!(even_levels(3, 0).is_err());
        // k = n → all levels of one.
        assert_eq!(even_levels(3, 3).unwrap().physical_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn balanced_algorithm1_domain() {
        // n = 100: k = 10, 7×4 + 3×24.
        let s = balanced(100).unwrap();
        assert_eq!(s.physical_counts(), vec![4, 4, 4, 4, 4, 4, 4, 24, 24, 24]);
        assert_eq!(s.replica_count(), 100);
        // Write load = 1/|K_phy| = 1/10 = 1/sqrt(100).
        let t = ArbitraryTree::from_spec(&s).unwrap();
        let m = TreeMetrics::new(&t);
        assert!((m.write_load() - 0.1).abs() < 1e-12);
        assert!((m.read_load() - 0.25).abs() < 1e-12);
        assert_eq!(m.read_cost().avg, 10.0);
        assert!((m.write_cost().avg - 10.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_handles_remainders() {
        // n = 107: k = round(10.34) = 10, rest 79 over 3 levels: 26,26,27... but
        // 79 = 3*26 + 1 → 26,26,27.
        let s = balanced(107).unwrap();
        assert_eq!(s.physical_counts(), vec![4, 4, 4, 4, 4, 4, 4, 26, 26, 27]);
        assert_eq!(s.replica_count(), 107);
        s.validate().unwrap();
    }

    #[test]
    fn balanced_mid_range() {
        // 32 < n <= 64: 7×4 + (n-28).
        let s = balanced(50).unwrap();
        assert_eq!(s.physical_counts(), vec![4, 4, 4, 4, 4, 4, 4, 22]);
        assert_eq!(s.replica_count(), 50);
        // Boundary n = 33: last level holds 5.
        let s = balanced(33).unwrap();
        assert_eq!(s.physical_counts(), vec![4, 4, 4, 4, 4, 4, 4, 5]);
    }

    #[test]
    fn balanced_small_fallback_is_valid() {
        for n in 1..=32 {
            let s = balanced(n).unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(s.replica_count(), n, "n={n}");
            s.validate().unwrap();
        }
        assert!(balanced(0).is_err());
    }

    #[test]
    fn balanced_valid_for_large_range() {
        for n in 65..400 {
            let s = balanced(n).unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(s.replica_count(), n, "n={n}");
            s.validate().unwrap();
            // Read load is always 1/4 on the algorithm's domain.
            let t = ArbitraryTree::from_spec(&s).unwrap();
            assert!(
                (TreeMetrics::new(&t).read_load() - 0.25).abs() < 1e-12,
                "n={n}"
            );
        }
    }

    #[test]
    fn complete_binary_shapes() {
        let s = complete_binary(3).unwrap();
        assert_eq!(s.physical_counts(), vec![1, 2, 4, 8]);
        assert_eq!(s.replica_count(), 15);
        assert!(complete_binary(63).is_err());
        // height 0 → a single replica.
        assert_eq!(complete_binary(0).unwrap().replica_count(), 1);
    }

    #[test]
    fn unmodified_write_load_is_inverse_log() {
        // §3.3: applied to a fully physical tree, write load = 1/log2(n+1).
        for h in [2usize, 3, 4, 6] {
            let t = ArbitraryTree::from_spec(&complete_binary(h).unwrap()).unwrap();
            let n = t.replica_count() as f64;
            let m = TreeMetrics::new(&t);
            let expect = 1.0 / (n + 1.0).log2();
            assert!(
                (m.write_load() - expect).abs() < 1e-12,
                "h={h}: {} vs {expect}",
                m.write_load()
            );
            // Read load = 1/d = 1 (root level has a single replica).
            assert_eq!(m.read_load(), 1.0);
        }
    }
}
