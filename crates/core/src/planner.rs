//! Frequency-driven configuration planning and live reconfiguration.
//!
//! §3.3 of the paper: *"the tree structure must be configured in such a way
//! that it takes into account the frequencies of read and write operations"*,
//! and shifting between configurations requires *"just modifying the
//! structure of the tree"* — no new protocol. [`plan`] searches the spectrum
//! of level counts for the shape minimizing the workload-weighted expected
//! load; [`pareto_frontier`] enumerates the whole read/write trade-off;
//! [`reconfigure`] computes the replica moves between two shapes.

use crate::builder::even_levels;
use crate::error::TreeError;
use crate::metrics::TreeMetrics;
use crate::spec::TreeSpec;
use crate::tree::ArbitraryTree;
use arbitree_quorum::SiteId;
use std::fmt;

/// A workload description: how often reads happen relative to writes, and
/// how reliable individual replicas are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Fraction of operations that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Per-replica availability probability `p` (§3.2: assumed `> 1/2`).
    pub availability: f64,
}

impl Workload {
    /// Creates a workload profile.
    ///
    /// # Panics
    ///
    /// Panics if either argument is outside `[0, 1]`.
    pub fn new(read_fraction: f64, availability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read_fraction must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&availability),
            "availability must be in [0,1]"
        );
        Workload {
            read_fraction,
            availability,
        }
    }

    /// A read-heavy workload (95% reads) at the given availability.
    pub fn read_heavy(availability: f64) -> Self {
        Self::new(0.95, availability)
    }

    /// A write-heavy workload (95% writes).
    pub fn write_heavy(availability: f64) -> Self {
        Self::new(0.05, availability)
    }

    /// A balanced workload (50/50).
    pub fn balanced(availability: f64) -> Self {
        Self::new(0.5, availability)
    }
}

/// Outcome of [`plan`]: the chosen shape and its objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The chosen tree shape.
    pub spec: TreeSpec,
    /// Number of physical levels the shape uses.
    pub physical_levels: usize,
    /// The workload-weighted expected system load of the shape.
    pub objective: f64,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} physical levels, objective {:.4})",
            self.spec, self.physical_levels, self.objective
        )
    }
}

/// The planning objective for a given shape: the workload-weighted expected
/// system load `f_r · E[L_RD] + (1 − f_r) · E[L_WR]` (equation 3.2 expectations).
pub fn objective(spec: &TreeSpec, workload: Workload) -> Result<f64, TreeError> {
    let tree = ArbitraryTree::from_spec(spec)?;
    let m = TreeMetrics::new(&tree);
    let p = workload.availability;
    Ok(workload.read_fraction * m.expected_read_load(p)
        + (1.0 - workload.read_fraction) * m.expected_write_load(p))
}

/// Searches every even-split shape with `1 ≤ |K_phy| ≤ ⌊n/2⌋` levels (each
/// level holding at least two replicas, matching the paper's
/// `MOSTLY-WRITE` extreme) and returns the shape minimizing [`objective`].
///
/// The endpoints of the search are exactly the paper's named configurations:
/// one level is `MOSTLY-READ`, `⌊n/2⌋` levels is `MOSTLY-WRITE`.
///
/// # Errors
///
/// Returns [`TreeError::UnsupportedReplicaCount`] if `n < 2`.
///
/// # Examples
///
/// ```
/// use arbitree_core::planner::{plan, Workload};
///
/// // A 95%-read workload collapses to one physical level (ROWA-like) …
/// let read_heavy = plan(20, Workload::read_heavy(0.9))?;
/// assert_eq!(read_heavy.physical_levels, 1);
///
/// // … while a 95%-write workload maximizes the level count.
/// let write_heavy = plan(20, Workload::write_heavy(0.9))?;
/// assert!(write_heavy.physical_levels > 5);
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
pub fn plan(n: usize, workload: Workload) -> Result<Plan, TreeError> {
    if n < 2 {
        return Err(TreeError::UnsupportedReplicaCount {
            n,
            reason: "planning needs at least two replicas",
        });
    }
    let mut best: Option<Plan> = None;
    for k in 1..=(n / 2) {
        let spec = even_levels(n, k)?;
        let obj = objective(&spec, workload)?;
        let better = match &best {
            None => true,
            Some(b) => obj < b.objective - 1e-12,
        };
        if better {
            best = Some(Plan {
                spec,
                physical_levels: k,
                objective: obj,
            });
        }
    }
    Ok(best.expect("n >= 2 yields at least the k=1 candidate"))
}

/// One point of the read/write trade-off frontier: a shape together with
/// its expected read and write loads.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The shape.
    pub spec: TreeSpec,
    /// Number of physical levels.
    pub physical_levels: usize,
    /// Expected read load at the probed availability.
    pub expected_read_load: f64,
    /// Expected write load at the probed availability.
    pub expected_write_load: f64,
}

/// Enumerates the Pareto frontier of even-split shapes for `n` replicas at
/// per-replica availability `p`: the shapes for which no other shape is
/// simultaneously better on *both* expected read load and expected write
/// load. The frontier is the paper's "spectrum" made concrete — every
/// point on it is the optimal answer for *some* read/write mix.
///
/// Points are returned in increasing level count (decreasing read
/// performance, increasing write performance).
///
/// # Errors
///
/// Returns [`TreeError::UnsupportedReplicaCount`] if `n < 2`.
///
/// # Examples
///
/// ```
/// use arbitree_core::planner::pareto_frontier;
///
/// let frontier = pareto_frontier(20, 0.9)?;
/// // The extremes are always on the frontier.
/// assert_eq!(frontier.first().unwrap().physical_levels, 1);
/// assert_eq!(frontier.last().unwrap().physical_levels, 10);
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
pub fn pareto_frontier(n: usize, p: f64) -> Result<Vec<FrontierPoint>, TreeError> {
    if n < 2 {
        return Err(TreeError::UnsupportedReplicaCount {
            n,
            reason: "frontier needs at least two replicas",
        });
    }
    let mut candidates = Vec::new();
    for k in 1..=(n / 2) {
        let spec = even_levels(n, k)?;
        let tree = ArbitraryTree::from_spec(&spec)?;
        let m = TreeMetrics::new(&tree);
        candidates.push(FrontierPoint {
            spec,
            physical_levels: k,
            expected_read_load: m.expected_read_load(p),
            expected_write_load: m.expected_write_load(p),
        });
    }
    let frontier: Vec<FrontierPoint> = candidates
        .iter()
        .filter(|c| {
            !candidates.iter().any(|other| {
                other.expected_read_load < c.expected_read_load - 1e-12
                    && other.expected_write_load < c.expected_write_load - 1e-12
            })
        })
        .cloned()
        .collect();
    Ok(frontier)
}

/// One replica's move in a reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteMove {
    /// The replica that changes level.
    pub site: SiteId,
    /// Its level in the old shape.
    pub from_level: usize,
    /// Its level in the new shape.
    pub to_level: usize,
}

/// A migration between two shapes of the *same* replica set: which replicas
/// change tree level. Data never moves — only the logical organization —
/// which is the paper's headline operational property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    moves: Vec<SiteMove>,
    unchanged: usize,
}

impl MigrationPlan {
    /// The replicas that change level.
    pub fn moves(&self) -> &[SiteMove] {
        &self.moves
    }

    /// Number of replicas that keep their level.
    pub fn unchanged(&self) -> usize {
        self.unchanged
    }

    /// Total replicas involved.
    pub fn total(&self) -> usize {
        self.moves.len() + self.unchanged
    }
}

impl fmt::Display for MigrationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "migration: {} moved, {} unchanged",
            self.moves.len(),
            self.unchanged
        )
    }
}

/// Computes the level moves needed to shift the replica set from shape
/// `from` to shape `to` (site identifiers are positional: top-down,
/// left-to-right in both shapes).
///
/// # Errors
///
/// Returns [`TreeError::UnsupportedReplicaCount`] if the shapes host
/// different replica counts, or any validation error of either spec.
pub fn reconfigure(from: &TreeSpec, to: &TreeSpec) -> Result<MigrationPlan, TreeError> {
    let from_tree = ArbitraryTree::from_spec(from)?;
    let to_tree = ArbitraryTree::from_spec(to)?;
    if from_tree.replica_count() != to_tree.replica_count() {
        return Err(TreeError::UnsupportedReplicaCount {
            n: to_tree.replica_count(),
            reason: "reconfiguration requires equal replica counts",
        });
    }
    let mut moves = Vec::new();
    let mut unchanged = 0;
    for site in from_tree.universe().sites() {
        let a = from_tree.site_level(site);
        let b = to_tree.site_level(site);
        if a == b {
            unchanged += 1;
        } else {
            moves.push(SiteMove {
                site,
                from_level: a,
                to_level: b,
            });
        }
    }
    Ok(MigrationPlan { moves, unchanged })
}

/// Computes a *gradual* migration from shape `from` to shape `to`: a chain
/// of valid intermediate shapes in which each step moves at most
/// `max_moves` replicas between levels. Chaining live reconfigurations over
/// these steps bounds the per-step disruption (each step's migration writes
/// touch only slightly different quorums).
///
/// Levels are matched by width multisets: because level numbering is purely
/// logical, any non-decreasing arrangement of widths is a valid shape, so
/// the planner simply transfers replicas one at a time from shrinking
/// levels to growing ones (dropping a level when it empties, adding one
/// when needed) and re-sorts.
///
/// The returned vector starts with the first *changed* shape and ends with
/// a shape whose level-width multiset equals `to`'s (an empty vector means
/// the shapes already agree).
///
/// # Errors
///
/// Returns [`TreeError::UnsupportedReplicaCount`] if the shapes have
/// different replica counts or `max_moves == 0`, or any validation error of
/// either spec.
///
/// # Examples
///
/// ```
/// use arbitree_core::planner::gradual_migration;
///
/// let from = "1-16".parse()?;
/// let to = "1-2-6-8".parse()?;
/// let steps = gradual_migration(&from, &to, 4)?;
/// // Every step is a valid shape; the last one matches the target widths.
/// assert_eq!(steps.last().unwrap().physical_counts(), vec![2, 6, 8]);
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
pub fn gradual_migration(
    from: &TreeSpec,
    to: &TreeSpec,
    max_moves: usize,
) -> Result<Vec<TreeSpec>, TreeError> {
    from.validate()?;
    to.validate()?;
    if from.replica_count() != to.replica_count() {
        return Err(TreeError::UnsupportedReplicaCount {
            n: to.replica_count(),
            reason: "gradual migration requires equal replica counts",
        });
    }
    if max_moves == 0 {
        return Err(TreeError::UnsupportedReplicaCount {
            n: 0,
            reason: "max_moves must be positive",
        });
    }

    // Work on sorted width multisets; pad the shorter with zeros (a zero
    // entry is a level to be created/destroyed, never materialized as such).
    let mut cur = from.physical_counts();
    let mut target = to.physical_counts();
    cur.sort_unstable();
    target.sort_unstable();
    // Align by padding at the front (smallest side) so big levels match big
    // levels, minimizing total moves.
    while cur.len() < target.len() {
        cur.insert(0, 0);
    }
    while target.len() < cur.len() {
        target.insert(0, 0);
    }

    let mut steps = Vec::new();
    while cur != target {
        let mut budget = max_moves;
        while budget > 0 {
            // Move one replica from the entry with the largest surplus to
            // the one with the largest deficit.
            let donor = (0..cur.len())
                .filter(|&i| cur[i] > target[i])
                .max_by_key(|&i| cur[i] - target[i]);
            let recipient = (0..cur.len())
                .filter(|&i| cur[i] < target[i])
                .max_by_key(|&i| target[i] - cur[i]);
            match (donor, recipient) {
                (Some(d), Some(r)) => {
                    cur[d] -= 1;
                    cur[r] += 1;
                    budget -= 1;
                }
                _ => break,
            }
        }
        let mut widths: Vec<usize> = cur.iter().copied().filter(|&w| w > 0).collect();
        widths.sort_unstable();
        let spec = TreeSpec::logical_root(widths);
        spec.validate()?;
        steps.push(spec);
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{mostly_read, mostly_write};

    #[test]
    fn read_heavy_plans_one_level() {
        let p = plan(30, Workload::read_heavy(0.95)).unwrap();
        assert_eq!(p.physical_levels, 1);
        assert_eq!(p.spec, mostly_read(30).unwrap());
    }

    #[test]
    fn write_heavy_plans_many_levels() {
        let p = plan(30, Workload::write_heavy(0.95)).unwrap();
        assert!(p.physical_levels >= 10, "got {}", p.physical_levels);
    }

    #[test]
    fn balanced_plans_intermediate() {
        let p = plan(64, Workload::balanced(0.95)).unwrap();
        assert!(
            p.physical_levels > 1 && p.physical_levels < 32,
            "got {}",
            p.physical_levels
        );
    }

    #[test]
    fn objective_decreases_with_matching_shape() {
        // For a pure-read workload, mostly_read beats mostly_write.
        let w = Workload::new(1.0, 0.9);
        let r = objective(&mostly_read(20).unwrap(), w).unwrap();
        let wr = objective(&mostly_write(20).unwrap(), w).unwrap();
        assert!(r < wr);
        // And vice versa.
        let w = Workload::new(0.0, 0.9);
        let r = objective(&mostly_read(20).unwrap(), w).unwrap();
        let wr = objective(&mostly_write(20).unwrap(), w).unwrap();
        assert!(wr < r);
    }

    #[test]
    fn plan_objective_is_minimal_over_search_space() {
        let n = 24;
        let w = Workload::balanced(0.85);
        let best = plan(n, w).unwrap();
        for k in 1..=n / 2 {
            let obj = objective(&even_levels(n, k).unwrap(), w).unwrap();
            assert!(best.objective <= obj + 1e-12, "k={k} beats the plan");
        }
    }

    #[test]
    fn plan_rejects_tiny_systems() {
        assert!(plan(1, Workload::balanced(0.9)).is_err());
    }

    #[test]
    fn reconfigure_counts_moves() {
        let from = mostly_read(9).unwrap(); // all at level 1
        let to = mostly_write(9).unwrap(); // levels 1..=4
        let m = reconfigure(&from, &to).unwrap();
        assert_eq!(m.total(), 9);
        // Sites 0,1 stay at level 1; the rest move deeper.
        assert_eq!(m.unchanged(), 2);
        assert_eq!(m.moves().len(), 7);
        for mv in m.moves() {
            assert_eq!(mv.from_level, 1);
            assert!(mv.to_level > 1);
        }
    }

    #[test]
    fn reconfigure_identity_is_empty() {
        let s = mostly_write(10).unwrap();
        let m = reconfigure(&s, &s).unwrap();
        assert!(m.moves().is_empty());
        assert_eq!(m.unchanged(), 10);
    }

    #[test]
    fn reconfigure_rejects_mismatched_n() {
        let a = mostly_read(8).unwrap();
        let b = mostly_read(9).unwrap();
        assert!(reconfigure(&a, &b).is_err());
    }

    #[test]
    fn frontier_contains_extremes_and_is_nondominated() {
        let frontier = pareto_frontier(24, 0.9).unwrap();
        assert!(frontier.len() >= 2);
        // Sorted by level count, read load non-decreasing along it.
        for w in frontier.windows(2) {
            assert!(w[0].physical_levels < w[1].physical_levels);
            assert!(w[0].expected_read_load <= w[1].expected_read_load + 1e-12);
            assert!(w[0].expected_write_load >= w[1].expected_write_load - 1e-12);
        }
        // No point dominates another.
        for a in &frontier {
            for b in &frontier {
                if a != b {
                    let dominates = a.expected_read_load < b.expected_read_load - 1e-12
                        && a.expected_write_load < b.expected_write_load - 1e-12;
                    assert!(!dominates);
                }
            }
        }
    }

    #[test]
    fn every_plan_lands_on_the_frontier() {
        let n = 18;
        let p = 0.9;
        let frontier = pareto_frontier(n, p).unwrap();
        for read_fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let best = plan(n, Workload::new(read_fraction, p)).unwrap();
            assert!(
                frontier.iter().any(|f| f.spec == best.spec),
                "plan for {read_fraction} not on frontier"
            );
        }
    }

    #[test]
    fn frontier_rejects_tiny_systems() {
        assert!(pareto_frontier(1, 0.9).is_err());
    }

    #[test]
    fn gradual_migration_reaches_target_in_bounded_steps() {
        let from: TreeSpec = "1-16".parse().unwrap();
        let to: TreeSpec = "1-2-6-8".parse().unwrap();
        let steps = gradual_migration(&from, &to, 3).unwrap();
        assert!(!steps.is_empty());
        for s in &steps {
            s.validate().unwrap();
            assert_eq!(s.replica_count(), 16);
        }
        assert_eq!(steps.last().unwrap().physical_counts(), vec![2, 6, 8]);
        // Total moved replicas = 8 (16→8 donates 8), at ≤3 per step → ≥3 steps.
        assert!(steps.len() >= 3, "{} steps", steps.len());
    }

    #[test]
    fn gradual_migration_step_budget_respected() {
        let from: TreeSpec = "1-20".parse().unwrap();
        let to: TreeSpec = "1-2-2-2-2-2-10".parse().unwrap();
        let steps = gradual_migration(&from, &to, 2).unwrap();
        // Width multisets of consecutive steps differ by at most 2 moves.
        let mut prev = {
            let mut v = from.physical_counts();
            v.sort_unstable();
            v
        };
        for s in &steps {
            let mut cur = s.physical_counts();
            cur.sort_unstable();
            // Count surplus against the previous multiset.
            let moved: usize = multiset_diff(&prev, &cur);
            assert!(moved <= 2, "{prev:?} -> {cur:?} moved {moved}");
            prev = cur;
        }
    }

    fn multiset_diff(a: &[usize], b: &[usize]) -> usize {
        // Replicas moved between two shapes: align the sorted width vectors
        // (pad the shorter at the front with empty levels) and take half
        // the L1 distance.
        let mut a: Vec<usize> = a.to_vec();
        let mut b: Vec<usize> = b.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        while a.len() < b.len() {
            a.insert(0, 0);
        }
        while b.len() < a.len() {
            b.insert(0, 0);
        }
        a.iter().zip(&b).map(|(x, y)| x.abs_diff(*y)).sum::<usize>() / 2
    }

    #[test]
    fn gradual_migration_identity_is_empty() {
        let s: TreeSpec = "1-3-5".parse().unwrap();
        assert!(gradual_migration(&s, &s, 4).unwrap().is_empty());
        // Same multiset, different order of equal widths → also empty.
        let a: TreeSpec = "1-3-5".parse().unwrap();
        let b: TreeSpec = "1-3-5".parse().unwrap();
        assert!(gradual_migration(&a, &b, 1).unwrap().is_empty());
    }

    #[test]
    fn gradual_migration_rejects_bad_inputs() {
        let a: TreeSpec = "1-8".parse().unwrap();
        let b: TreeSpec = "1-9".parse().unwrap();
        assert!(gradual_migration(&a, &b, 2).is_err());
        let c: TreeSpec = "1-4-4".parse().unwrap();
        assert!(gradual_migration(&a, &c, 0).is_err());
    }

    #[test]
    fn workload_constructors_validate() {
        assert_eq!(Workload::read_heavy(0.9).read_fraction, 0.95);
        assert_eq!(Workload::write_heavy(0.9).read_fraction, 0.05);
        assert_eq!(Workload::balanced(0.9).read_fraction, 0.5);
    }

    #[test]
    #[should_panic(expected = "read_fraction")]
    fn workload_rejects_bad_fraction() {
        let _ = Workload::new(1.5, 0.9);
    }

    #[test]
    fn display_impls() {
        let p = plan(10, Workload::balanced(0.9)).unwrap();
        assert!(p.to_string().contains("objective"));
        let m = reconfigure(&mostly_read(9).unwrap(), &mostly_write(9).unwrap()).unwrap();
        assert!(m.to_string().contains("moved"));
    }
}
