//! Tree specifications: the per-level shape of an arbitrary tree, with the
//! paper's `1-3-5` notation (§3.4), parsing and validation.

use crate::error::TreeError;
use std::fmt;
use std::str::FromStr;

/// Shape of one tree level: how many physical (replica) and logical
/// (placeholder) nodes it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LevelSpec {
    /// Number of physical nodes (replicas) at this level — `m_phy_k`.
    pub physical: usize,
    /// Number of logical nodes at this level — `m_log_k`.
    pub logical: usize,
}

impl LevelSpec {
    /// A level with `physical` replicas and no logical filler.
    pub const fn physical(physical: usize) -> Self {
        LevelSpec {
            physical,
            logical: 0,
        }
    }

    /// A level holding only logical nodes.
    pub const fn logical(logical: usize) -> Self {
        LevelSpec {
            physical: 0,
            logical,
        }
    }

    /// Total node count `m_k` at this level.
    pub const fn total(self) -> usize {
        self.physical + self.logical
    }

    /// Whether this is a *physical level* (at least one physical node).
    pub const fn is_physical(self) -> bool {
        self.physical > 0
    }
}

/// The complete per-level shape of an arbitrary tree.
///
/// Level 0 is the root level and must hold exactly one node. A spec is the
/// declarative form of a tree: [`crate::ArbitraryTree::from_spec`] turns it
/// into a concrete node structure.
///
/// # Notation
///
/// The paper writes a logical-root tree as `1-3-5`: the leading `1` *is* the
/// logical root, the remaining components are the physical-node counts of
/// each deeper level. We additionally accept a `p:` prefix for trees whose
/// root is physical (e.g. `p:1-2-4`, a fully physical binary tree), where
/// every component is a physical count starting at level 0.
///
/// Logical *filler* nodes on otherwise-physical levels (like the four
/// logical nodes on level 2 of the paper's Figure 1) do not appear in the
/// notation; set them explicitly via [`LevelSpec`].
///
/// # Examples
///
/// ```
/// use arbitree_core::TreeSpec;
///
/// let spec: TreeSpec = "1-3-5".parse()?;
/// assert_eq!(spec.replica_count(), 8);
/// assert_eq!(spec.height(), 2);
/// assert_eq!(spec.to_string(), "1-3-5");
/// spec.validate()?;
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TreeSpec {
    levels: Vec<LevelSpec>,
}

impl TreeSpec {
    /// Creates a spec from explicit levels (level 0 first).
    pub fn new(levels: Vec<LevelSpec>) -> Self {
        TreeSpec { levels }
    }

    /// A logical-root spec from the physical counts of levels `1..=h`
    /// (the paper's canonical shape: all logical filler counts zero).
    ///
    /// # Examples
    ///
    /// ```
    /// use arbitree_core::TreeSpec;
    ///
    /// let spec = TreeSpec::logical_root([3, 5]);
    /// assert_eq!(spec.to_string(), "1-3-5");
    /// ```
    pub fn logical_root<I: IntoIterator<Item = usize>>(physical_counts: I) -> Self {
        let mut levels = vec![LevelSpec::logical(1)];
        levels.extend(physical_counts.into_iter().map(LevelSpec::physical));
        TreeSpec { levels }
    }

    /// A physical-root spec from the physical counts of levels `0..=h`
    /// (the first count must be 1 for the spec to validate).
    pub fn physical_root<I: IntoIterator<Item = usize>>(physical_counts: I) -> Self {
        TreeSpec {
            levels: physical_counts
                .into_iter()
                .map(LevelSpec::physical)
                .collect(),
        }
    }

    /// The levels, root level first.
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// Tree height `h` (level count minus one).
    ///
    /// # Panics
    ///
    /// Panics if the spec has no levels; validate first.
    pub fn height(&self) -> usize {
        assert!(!self.levels.is_empty(), "spec has no levels");
        self.levels.len() - 1
    }

    /// Total number of replicas `n = Σ_k m_phy_k`.
    pub fn replica_count(&self) -> usize {
        self.levels.iter().map(|l| l.physical).sum()
    }

    /// Indices of the physical levels, ascending (`K_phy`).
    pub fn physical_levels(&self) -> Vec<usize> {
        self.levels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_physical())
            .map(|(k, _)| k)
            .collect()
    }

    /// Indices of the logical levels, ascending (`K_log`).
    pub fn logical_levels(&self) -> Vec<usize> {
        self.levels
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.is_physical())
            .map(|(k, _)| k)
            .collect()
    }

    /// Physical-node counts of the physical levels, in level order.
    pub fn physical_counts(&self) -> Vec<usize> {
        self.levels
            .iter()
            .filter(|l| l.is_physical())
            .map(|l| l.physical)
            .collect()
    }

    /// Checks structural well-formedness **and** assumption 3.1.
    ///
    /// Structural rules: at least one level; exactly one node at level 0; no
    /// empty level; at least one physical node overall. Assumption 3.1
    /// (taken literally over the per-level physical counts, logical levels
    /// counting as zero): `m_phy_0 < m_phy_1 ≤ m_phy_2 ≤ … ≤ m_phy_h`.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule as a [`TreeError`].
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.levels.is_empty() {
            return Err(TreeError::NoLevels);
        }
        if self.levels[0].total() != 1 {
            return Err(TreeError::BadRoot {
                nodes_at_root: self.levels[0].total(),
            });
        }
        for (k, l) in self.levels.iter().enumerate() {
            if l.total() == 0 {
                return Err(TreeError::EmptyLevel { level: k });
            }
        }
        if self.replica_count() == 0 {
            return Err(TreeError::NoPhysicalNodes);
        }
        // Assumption 3.1.
        if self.levels.len() >= 2 {
            let c0 = self.levels[0].physical;
            let c1 = self.levels[1].physical;
            if c0 >= c1 {
                return Err(TreeError::AssumptionViolated {
                    level: 1,
                    previous: c0,
                    current: c1,
                });
            }
            for k in 2..self.levels.len() {
                let prev = self.levels[k - 1].physical;
                let cur = self.levels[k].physical;
                if cur < prev {
                    return Err(TreeError::AssumptionViolated {
                        level: k,
                        previous: prev,
                        current: cur,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for TreeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.levels.is_empty() {
            return write!(f, "<empty>");
        }
        let logical_root = !self.levels[0].is_physical();
        if logical_root {
            write!(f, "1")?;
        } else {
            write!(f, "p:{}", self.levels[0].physical)?;
        }
        for l in &self.levels[1..] {
            write!(f, "-{}", l.physical)?;
        }
        Ok(())
    }
}

impl FromStr for TreeSpec {
    type Err = TreeError;

    fn from_str(s: &str) -> Result<Self, TreeError> {
        let parse_err = |reason: String| TreeError::ParseError { reason };
        let (physical_root, body) = match s.strip_prefix("p:") {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        if body.is_empty() {
            return Err(parse_err("empty spec".into()));
        }
        let mut counts = Vec::new();
        for comp in body.split('-') {
            if comp.is_empty() {
                return Err(parse_err("empty component".into()));
            }
            let v: usize = comp
                .parse()
                .map_err(|e| parse_err(format!("component {comp:?}: {e}")))?;
            counts.push(v);
        }
        if physical_root {
            Ok(TreeSpec::physical_root(counts))
        } else {
            if counts[0] != 1 {
                return Err(parse_err(format!(
                    "logical-root spec must start with 1 (the root), got {}",
                    counts[0]
                )));
            }
            Ok(TreeSpec::logical_root(counts.into_iter().skip(1)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_1_3_5() {
        let spec: TreeSpec = "1-3-5".parse().unwrap();
        assert_eq!(spec.height(), 2);
        assert_eq!(spec.replica_count(), 8);
        assert_eq!(spec.physical_levels(), vec![1, 2]);
        assert_eq!(spec.logical_levels(), vec![0]);
        assert_eq!(spec.physical_counts(), vec![3, 5]);
        spec.validate().unwrap();
        assert_eq!(spec.to_string(), "1-3-5");
    }

    #[test]
    fn physical_root_spec_roundtrip() {
        let spec: TreeSpec = "p:1-2-4".parse().unwrap();
        assert_eq!(spec.replica_count(), 7);
        assert_eq!(spec.physical_levels(), vec![0, 1, 2]);
        assert!(spec.logical_levels().is_empty());
        spec.validate().unwrap();
        assert_eq!(spec.to_string(), "p:1-2-4");
    }

    #[test]
    fn figure_one_with_logical_filler() {
        // Level 2 of Figure 1 has 5 physical + 4 logical nodes.
        let spec = TreeSpec::new(vec![
            LevelSpec::logical(1),
            LevelSpec::physical(3),
            LevelSpec {
                physical: 5,
                logical: 4,
            },
        ]);
        spec.validate().unwrap();
        assert_eq!(spec.replica_count(), 8);
        assert_eq!(spec.levels()[2].total(), 9);
        // Notation drops logical filler.
        assert_eq!(spec.to_string(), "1-3-5");
    }

    #[test]
    fn validation_catches_bad_root() {
        let spec = TreeSpec::new(vec![LevelSpec::physical(2)]);
        assert_eq!(
            spec.validate(),
            Err(TreeError::BadRoot { nodes_at_root: 2 })
        );
    }

    #[test]
    fn validation_catches_empty_level() {
        let spec = TreeSpec::new(vec![
            LevelSpec::logical(1),
            LevelSpec {
                physical: 0,
                logical: 0,
            },
        ]);
        assert_eq!(spec.validate(), Err(TreeError::EmptyLevel { level: 1 }));
    }

    #[test]
    fn validation_catches_no_physical() {
        let spec = TreeSpec::new(vec![LevelSpec::logical(1), LevelSpec::logical(2)]);
        assert_eq!(spec.validate(), Err(TreeError::NoPhysicalNodes));
    }

    #[test]
    fn validation_catches_assumption_violation() {
        // Decreasing physical counts: 5 then 3.
        let spec = TreeSpec::logical_root([5, 3]);
        assert_eq!(
            spec.validate(),
            Err(TreeError::AssumptionViolated {
                level: 2,
                previous: 5,
                current: 3
            })
        );
        // Physical root of 1 followed by level with 1 is not a strict increase.
        let spec = TreeSpec::physical_root([1, 1]);
        assert_eq!(
            spec.validate(),
            Err(TreeError::AssumptionViolated {
                level: 1,
                previous: 1,
                current: 1
            })
        );
    }

    #[test]
    fn interior_logical_level_violates_assumption() {
        let spec = TreeSpec::new(vec![
            LevelSpec::logical(1),
            LevelSpec::physical(2),
            LevelSpec::logical(3),
            LevelSpec::physical(4),
        ]);
        assert!(matches!(
            spec.validate(),
            Err(TreeError::AssumptionViolated { level: 2, .. })
        ));
    }

    #[test]
    fn single_physical_root_is_valid() {
        let spec = TreeSpec::physical_root([1]);
        spec.validate().unwrap();
        assert_eq!(spec.replica_count(), 1);
        assert_eq!(spec.height(), 0);
    }

    #[test]
    fn empty_spec_rejected() {
        assert_eq!(TreeSpec::new(vec![]).validate(), Err(TreeError::NoLevels));
        assert!(matches!(
            "".parse::<TreeSpec>(),
            Err(TreeError::ParseError { .. })
        ));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            "1--3".parse::<TreeSpec>(),
            Err(TreeError::ParseError { .. })
        ));
        assert!(matches!(
            "1-x".parse::<TreeSpec>(),
            Err(TreeError::ParseError { .. })
        ));
        assert!(matches!(
            "3-4".parse::<TreeSpec>(),
            Err(TreeError::ParseError { .. })
        ));
        assert!(matches!(
            "p:".parse::<TreeSpec>(),
            Err(TreeError::ParseError { .. })
        ));
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["1-3-5", "1-4-4-4", "p:1-2-4-8", "1-2"] {
            let spec: TreeSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
        }
    }

    #[test]
    fn mostly_read_and_write_shapes_validate() {
        TreeSpec::logical_root([9]).validate().unwrap(); // mostly-read, n=9
        TreeSpec::logical_root([2, 2, 2, 3]).validate().unwrap(); // mostly-write, n=9
    }
}
