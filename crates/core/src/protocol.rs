//! [`ArbitraryProtocol`]: the paper's protocol as a [`ReplicaControl`]
//! implementation usable by the simulator and the analysis crates.

use crate::metrics::TreeMetrics;
use crate::quorums::{read_quorums, write_quorums};
use crate::tree::ArbitraryTree;
use arbitree_quorum::{AliveSet, CostProfile, QuorumSet, ReplicaControl, SiteId, Universe};
use rand::RngCore;

/// The arbitrary tree-structured replica control protocol.
///
/// Wraps an [`ArbitraryTree`] and exposes quorum picking, enumeration and
/// the closed-form metrics through the [`ReplicaControl`] trait.
///
/// The canonical strategies are the paper's uniform ones: a read picks one
/// physical node uniformly at every physical level (equivalent to the uniform
/// distribution over all `m(R)` read quorums); a write picks one physical
/// level uniformly among the `|K_phy|` levels.
///
/// # Examples
///
/// ```
/// use arbitree_core::ArbitraryProtocol;
/// use arbitree_quorum::ReplicaControl;
///
/// let proto = ArbitraryProtocol::parse("1-3-5")?;
/// assert_eq!(proto.name(), "ARBITRARY");
/// assert_eq!(proto.read_cost().avg, 2.0);
/// assert_eq!(proto.write_quorums().count(), 2);
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ArbitraryProtocol {
    tree: ArbitraryTree,
    name: String,
}

impl ArbitraryProtocol {
    /// Wraps an already-built tree.
    pub fn new(tree: ArbitraryTree) -> Self {
        ArbitraryProtocol {
            tree,
            name: "ARBITRARY".to_owned(),
        }
    }

    /// Parses a spec string (e.g. `"1-3-5"`) and wraps the resulting tree.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::TreeError`] on parse or validation failure.
    pub fn parse(spec: &str) -> Result<Self, crate::TreeError> {
        Ok(Self::new(ArbitraryTree::parse(spec)?))
    }

    /// Overrides the display name (used by the §4 configurations, e.g.
    /// `"MOSTLY-READ"`).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The underlying tree.
    pub fn tree(&self) -> &ArbitraryTree {
        &self.tree
    }

    /// The closed-form metric view of the tree.
    pub fn metrics(&self) -> TreeMetrics<'_> {
        TreeMetrics::new(&self.tree)
    }
}

impl ReplicaControl for ArbitraryProtocol {
    fn name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> String {
        self.tree.spec().to_string()
    }

    fn universe(&self) -> Universe {
        self.tree.universe()
    }

    fn read_quorums(&self) -> Box<dyn Iterator<Item = QuorumSet> + '_> {
        Box::new(read_quorums(&self.tree))
    }

    fn write_quorums(&self) -> Box<dyn Iterator<Item = QuorumSet> + '_> {
        Box::new(write_quorums(&self.tree))
    }

    fn pick_read_quorum(&self, alive: AliveSet, rng: &mut dyn RngCore) -> Option<QuorumSet> {
        // One uniformly-random live physical node per physical level; if any
        // level is fully dead the read cannot terminate.
        let mut members: Vec<SiteId> = Vec::with_capacity(self.tree.physical_level_count());
        for &k in self.tree.physical_levels() {
            let live: Vec<SiteId> = self
                .tree
                .level_sites(k)
                .iter()
                .copied()
                .filter(|&s| alive.contains(s))
                .collect();
            if live.is_empty() {
                return None;
            }
            let idx = (rng.next_u64() % live.len() as u64) as usize;
            members.push(live[idx]);
        }
        Some(QuorumSet::from_sites(members))
    }

    fn pick_write_quorum(&self, alive: AliveSet, rng: &mut dyn RngCore) -> Option<QuorumSet> {
        // Uniformly among the physical levels whose replicas are all alive.
        let live_levels: Vec<usize> = self
            .tree
            .physical_levels()
            .iter()
            .copied()
            .filter(|&k| self.tree.level_sites(k).iter().all(|&s| alive.contains(s)))
            .collect();
        if live_levels.is_empty() {
            return None;
        }
        let idx = (rng.next_u64() % live_levels.len() as u64) as usize;
        Some(QuorumSet::from_sites(
            self.tree.level_sites(live_levels[idx]).iter().copied(),
        ))
    }

    fn read_cost(&self) -> CostProfile {
        self.metrics().read_cost()
    }

    fn write_cost(&self) -> CostProfile {
        self.metrics().write_cost()
    }

    fn read_availability(&self, p: f64) -> f64 {
        self.metrics().read_availability(p)
    }

    fn write_availability(&self, p: f64) -> f64 {
        self.metrics().write_availability(p)
    }

    fn read_load(&self) -> f64 {
        self.metrics().read_load()
    }

    fn write_load(&self) -> f64 {
        self.metrics().write_load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn proto_135() -> ArbitraryProtocol {
        ArbitraryProtocol::parse("1-3-5").unwrap()
    }

    #[test]
    fn bicoterie_property_holds() {
        let p = proto_135();
        let b = p.to_bicoterie().unwrap();
        assert_eq!(b.read_quorums().len(), 15);
        assert_eq!(b.write_quorums().len(), 2);
    }

    #[test]
    fn pick_read_quorum_all_alive() {
        let p = proto_135();
        let mut rng = StdRng::seed_from_u64(1);
        let q = p.pick_read_quorum(AliveSet::full(8), &mut rng).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pick_read_quorum_avoids_dead_sites() {
        let p = proto_135();
        let mut rng = StdRng::seed_from_u64(2);
        // Kill sites 0 and 1 on level 1; only site 2 remains there.
        let mut alive = AliveSet::full(8);
        alive.remove(SiteId::new(0));
        alive.remove(SiteId::new(1));
        for _ in 0..50 {
            let q = p.pick_read_quorum(alive, &mut rng).unwrap();
            assert!(q.contains(SiteId::new(2)));
            assert!(!q.contains(SiteId::new(0)));
        }
    }

    #[test]
    fn pick_read_quorum_fails_when_level_dead() {
        let p = proto_135();
        let mut rng = StdRng::seed_from_u64(3);
        // Kill the whole level 1 (sites 0,1,2).
        let mut alive = AliveSet::full(8);
        for s in 0..3 {
            alive.remove(SiteId::new(s));
        }
        assert!(p.pick_read_quorum(alive, &mut rng).is_none());
    }

    #[test]
    fn pick_write_quorum_prefers_live_level() {
        let p = proto_135();
        let mut rng = StdRng::seed_from_u64(4);
        // Kill one site of level 2 → only level 1 fully alive.
        let mut alive = AliveSet::full(8);
        alive.remove(SiteId::new(7));
        for _ in 0..20 {
            let q = p.pick_write_quorum(alive, &mut rng).unwrap();
            assert_eq!(q, QuorumSet::from_indices(0..3));
        }
    }

    #[test]
    fn pick_write_quorum_fails_when_all_levels_hit() {
        let p = proto_135();
        let mut rng = StdRng::seed_from_u64(5);
        let mut alive = AliveSet::full(8);
        alive.remove(SiteId::new(0)); // level 1 broken
        alive.remove(SiteId::new(7)); // level 2 broken
        assert!(p.pick_write_quorum(alive, &mut rng).is_none());
    }

    #[test]
    fn picked_quorums_are_valid_quorums() {
        let p = proto_135();
        let mut rng = StdRng::seed_from_u64(6);
        let alive = AliveSet::full(8);
        let reads: Vec<QuorumSet> = p.read_quorums().collect();
        let writes: Vec<QuorumSet> = p.write_quorums().collect();
        for _ in 0..100 {
            let r = p.pick_read_quorum(alive, &mut rng).unwrap();
            assert!(reads.contains(&r), "{r} not an enumerated read quorum");
            let w = p.pick_write_quorum(alive, &mut rng).unwrap();
            assert!(writes.contains(&w));
        }
    }

    #[test]
    fn name_override() {
        let p = proto_135().with_name("MOSTLY-READ");
        assert_eq!(p.name(), "MOSTLY-READ");
    }

    #[test]
    fn metrics_delegate() {
        let p = proto_135();
        assert_eq!(p.read_load(), 1.0 / 3.0);
        assert_eq!(p.write_load(), 0.5);
        assert_eq!(p.write_cost().avg, 4.0);
        assert!((p.expected_write_load(0.7) - 0.7733).abs() < 2e-3);
    }
}
