//! Errors for arbitrary-tree construction and validation.

use std::fmt;

/// Errors raised when building or validating an arbitrary tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The spec describes no levels at all.
    NoLevels,
    /// Level 0 must contain exactly one node (the root).
    BadRoot {
        /// Total number of nodes the spec placed at level 0.
        nodes_at_root: usize,
    },
    /// A level has no nodes, leaving deeper levels unattached.
    EmptyLevel {
        /// The offending level number.
        level: usize,
    },
    /// The tree contains no physical node anywhere, so no replica exists.
    NoPhysicalNodes,
    /// Assumption 3.1 is violated: the physical-node counts of the physical
    /// levels must satisfy `m_phy(first) < m_phy(second) ≤ … ≤ m_phy(last)`
    /// when read top-down (with a strict increase after the root level only
    /// if the root is physical).
    AssumptionViolated {
        /// The level whose count breaks the chain.
        level: usize,
        /// Physical count at the previous physical level.
        previous: usize,
        /// Physical count at `level`.
        current: usize,
    },
    /// A spec string could not be parsed.
    ParseError {
        /// Explanation of the failure.
        reason: String,
    },
    /// The requested replica count is not supported by this constructor.
    UnsupportedReplicaCount {
        /// The requested `n`.
        n: usize,
        /// Constructor-specific explanation.
        reason: &'static str,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NoLevels => write!(f, "tree spec has no levels"),
            TreeError::BadRoot { nodes_at_root } => {
                write!(f, "level 0 must hold exactly one node, found {nodes_at_root}")
            }
            TreeError::EmptyLevel { level } => {
                write!(f, "level {level} has no nodes")
            }
            TreeError::NoPhysicalNodes => write!(f, "tree has no physical nodes"),
            TreeError::AssumptionViolated { level, previous, current } => write!(
                f,
                "assumption 3.1 violated at level {level}: {current} physical nodes after {previous}"
            ),
            TreeError::ParseError { reason } => write!(f, "invalid tree spec: {reason}"),
            TreeError::UnsupportedReplicaCount { n, reason } => {
                write!(f, "unsupported replica count {n}: {reason}")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(TreeError::NoLevels.to_string().contains("no levels"));
        assert!(TreeError::BadRoot { nodes_at_root: 2 }
            .to_string()
            .contains("2"));
        assert!(TreeError::EmptyLevel { level: 3 }.to_string().contains("3"));
        assert!(TreeError::NoPhysicalNodes.to_string().contains("physical"));
        let e = TreeError::AssumptionViolated {
            level: 2,
            previous: 5,
            current: 3,
        };
        assert!(e.to_string().contains("assumption 3.1"));
        assert!(e.to_string().contains("level 2"));
        let p = TreeError::ParseError {
            reason: "empty component".into(),
        };
        assert!(p.to_string().contains("empty component"));
        let u = TreeError::UnsupportedReplicaCount {
            n: 5,
            reason: "needs n > 64",
        };
        assert!(u.to_string().contains("5"));
    }
}
