//! Read- and write-quorum construction for the arbitrary protocol (§3.2).
//!
//! * A **read quorum** takes *any one* physical node from *every* physical
//!   level (§3.2.1); there are `m(R) = ∏_k m_phy_k` of them (fact 3.2.1).
//! * A **write quorum** takes *all* physical nodes of *any one* physical
//!   level (§3.2.2); there are `m(W) = 1 + h − |K_log| = |K_phy|` of them
//!   (fact 3.2.2).

use crate::tree::ArbitraryTree;
use arbitree_quorum::QuorumSet;

/// Number of read quorums `m(R) = ∏_{k ∈ K_phy} m_phy_k` (fact 3.2.1),
/// or `None` on `u128` overflow (astronomically large systems).
///
/// # Examples
///
/// ```
/// use arbitree_core::{read_quorum_count, ArbitraryTree};
///
/// let tree = ArbitraryTree::parse("1-3-5")?;
/// assert_eq!(read_quorum_count(&tree), Some(15));
/// # Ok::<(), arbitree_core::TreeError>(())
/// ```
pub fn read_quorum_count(tree: &ArbitraryTree) -> Option<u128> {
    tree.physical_levels().iter().try_fold(1u128, |acc, &k| {
        acc.checked_mul(tree.level_physical(k) as u128)
    })
}

/// Number of write quorums `m(W) = |K_phy|` (fact 3.2.2).
pub fn write_quorum_count(tree: &ArbitraryTree) -> usize {
    tree.physical_level_count()
}

/// Iterator over every read quorum of the tree, in mixed-radix order
/// (the first physical level varies slowest).
///
/// The total count is [`read_quorum_count`], which is exponential in the
/// number of physical levels — consume lazily on large trees.
#[derive(Debug, Clone)]
pub struct ReadQuorums<'a> {
    tree: &'a ArbitraryTree,
    /// Current index into each physical level's site list; `None` once done.
    cursor: Option<Vec<usize>>,
}

impl<'a> ReadQuorums<'a> {
    pub(crate) fn new(tree: &'a ArbitraryTree) -> Self {
        ReadQuorums {
            tree,
            cursor: Some(vec![0; tree.physical_level_count()]),
        }
    }
}

impl Iterator for ReadQuorums<'_> {
    type Item = QuorumSet;

    fn next(&mut self) -> Option<QuorumSet> {
        let cursor = self.cursor.as_mut()?;
        let levels = self.tree.physical_levels();
        let quorum = QuorumSet::from_sites(
            levels
                .iter()
                .zip(cursor.iter())
                .map(|(&k, &i)| self.tree.level_sites(k)[i]),
        );
        // Advance the mixed-radix counter (last level fastest).
        let mut pos = levels.len();
        loop {
            if pos == 0 {
                self.cursor = None;
                break;
            }
            pos -= 1;
            cursor[pos] += 1;
            if cursor[pos] < self.tree.level_physical(levels[pos]) {
                break;
            }
            cursor[pos] = 0;
        }
        Some(quorum)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match (&self.cursor, read_quorum_count(self.tree)) {
            (None, _) => (0, Some(0)),
            (Some(_), Some(total)) if total <= usize::MAX as u128 => {
                // Remaining = total - consumed; recompute consumed from cursor.
                let levels = self.tree.physical_levels();
                let mut consumed: u128 = 0;
                for (i, &k) in levels.iter().enumerate() {
                    consumed = consumed * self.tree.level_physical(k) as u128
                        + self.cursor.as_ref().expect("checked Some")[i] as u128;
                }
                let rem = usize::try_from(total - consumed)
                    .expect("remaining count bounded by the total <= usize::MAX guard");
                (rem, Some(rem))
            }
            _ => (usize::MAX, None),
        }
    }
}

/// Iterator over the write quorums of the tree: one per physical level,
/// top level first.
#[derive(Debug, Clone)]
pub struct WriteQuorums<'a> {
    tree: &'a ArbitraryTree,
    next_index: usize,
}

impl<'a> WriteQuorums<'a> {
    pub(crate) fn new(tree: &'a ArbitraryTree) -> Self {
        WriteQuorums {
            tree,
            next_index: 0,
        }
    }
}

impl Iterator for WriteQuorums<'_> {
    type Item = QuorumSet;

    fn next(&mut self) -> Option<QuorumSet> {
        let &level = self.tree.physical_levels().get(self.next_index)?;
        self.next_index += 1;
        Some(QuorumSet::from_sites(
            self.tree.level_sites(level).iter().copied(),
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.tree.physical_level_count() - self.next_index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for WriteQuorums<'_> {}

/// Enumerates the read quorums of `tree`.
pub fn read_quorums(tree: &ArbitraryTree) -> ReadQuorums<'_> {
    ReadQuorums::new(tree)
}

/// Enumerates the write quorums of `tree`.
pub fn write_quorums(tree: &ArbitraryTree) -> WriteQuorums<'_> {
    WriteQuorums::new(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbitree_quorum::SiteId;

    fn tree_135() -> ArbitraryTree {
        ArbitraryTree::parse("1-3-5").unwrap()
    }

    #[test]
    fn counts_match_paper_example() {
        // §3.4: m(R) = 3·5 = 15, m(W) = 2.
        let t = tree_135();
        assert_eq!(read_quorum_count(&t), Some(15));
        assert_eq!(write_quorum_count(&t), 2);
    }

    #[test]
    fn read_quorums_enumerate_exactly_m_r() {
        let t = tree_135();
        let all: Vec<QuorumSet> = read_quorums(&t).collect();
        assert_eq!(all.len(), 15);
        // Each takes one site from level 1 (sites 0..3) and one from level 2
        // (sites 3..8).
        for q in &all {
            assert_eq!(q.len(), 2);
            let v: Vec<usize> = q.iter().map(SiteId::index).collect();
            assert!(v[0] < 3, "{v:?}");
            assert!((3..8).contains(&v[1]), "{v:?}");
        }
        // All distinct.
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
    }

    #[test]
    fn write_quorums_are_whole_levels() {
        let t = tree_135();
        let all: Vec<QuorumSet> = write_quorums(&t).collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], QuorumSet::from_indices(0..3));
        assert_eq!(all[1], QuorumSet::from_indices(3..8));
    }

    #[test]
    fn every_read_intersects_every_write() {
        // Bicoterie property (§3.2.3) checked by brute force.
        let t = tree_135();
        for r in read_quorums(&t) {
            for w in write_quorums(&t) {
                assert!(r.intersects(&w), "{r} misses {w}");
            }
        }
    }

    #[test]
    fn single_level_tree_behaves_like_rowa() {
        let t = ArbitraryTree::parse("1-4").unwrap();
        let reads: Vec<_> = read_quorums(&t).collect();
        assert_eq!(reads.len(), 4);
        assert!(reads.iter().all(|q| q.len() == 1));
        let writes: Vec<_> = write_quorums(&t).collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].len(), 4);
    }

    #[test]
    fn size_hints_are_exact() {
        let t = tree_135();
        let mut it = read_quorums(&t);
        assert_eq!(it.size_hint(), (15, Some(15)));
        it.next();
        assert_eq!(it.size_hint(), (14, Some(14)));
        let mut w = write_quorums(&t);
        assert_eq!(w.len(), 2);
        w.next();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn mixed_radix_order_varies_last_level_fastest() {
        let t = ArbitraryTree::parse("1-2-2").unwrap();
        let got: Vec<Vec<usize>> = read_quorums(&t)
            .map(|q| q.iter().map(SiteId::index).collect())
            .collect();
        assert_eq!(got, vec![vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3]]);
    }

    #[test]
    fn deep_tree_counts() {
        let t = ArbitraryTree::parse("1-2-2-2-3").unwrap();
        assert_eq!(read_quorum_count(&t), Some(24));
        assert_eq!(write_quorum_count(&t), 4);
        assert_eq!(read_quorums(&t).count(), 24);
    }
}
