//! Regenerates the **§3.4 running example**: every metric the paper derives
//! for the 8-replica `1-3-5` tree at p = 0.7, side by side with the paper's
//! reported values.

use arbitree_analysis::report::{fmt_f, render_table};
use arbitree_core::{ArbitraryTree, TreeMetrics};

fn main() {
    let tree = ArbitraryTree::parse("1-3-5").expect("paper example tree");
    let m = TreeMetrics::new(&tree);
    let p = 0.7;

    println!(
        "§3.4 example — spec {}, n = {}, p = {p}\n",
        tree.spec(),
        tree.replica_count()
    );
    let rows = vec![
        row("RD_cost", m.read_cost().avg, 2.0),
        row("RD_availability(0.7)", m.read_availability(p), 0.97),
        row("L_RD", m.read_load(), 1.0 / 3.0),
        row("WR_cost", m.write_cost().avg, 4.0),
        row("WR_availability(0.7)", m.write_availability(p), 0.45),
        row("L_WR", m.write_load(), 0.5),
        row("E[L_RD]", m.expected_read_load(p), 0.35),
        row("E[L_WR]", m.expected_write_load(p), 0.775),
    ];
    print!("{}", render_table(&["metric", "measured", "paper"], &rows));
}

fn row(name: &str, measured: f64, paper: f64) -> Vec<String> {
    vec![name.to_string(), fmt_f(measured), fmt_f(paper)]
}
