//! Cross-validates the paper's closed forms against the simulator: for each
//! §4 configuration at a moderate size, measures availability (static
//! alive-set sampling), load and cost (canonical-strategy sampling), and
//! runs a full dynamic simulation checking one-copy consistency.
//!
//! Usage: `sim_validate [--n <target_n>] [--p <availability>] [--trials <k>]`
//! (defaults 31, 0.75, 30000).

use arbitree_analysis::report::{fmt_f, render_table};
use arbitree_analysis::Configuration;
use arbitree_bench::arg_value;
use arbitree_core::ArbitraryProtocol;
use arbitree_sim::{
    empirical_availability, empirical_cost, empirical_load, parallel_map, run_cells,
    ExperimentCell, FailureSchedule, SimConfig, SimDuration,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_value(&args, "--n").unwrap_or(31.0) as usize;
    let p = arg_value(&args, "--p").unwrap_or(0.75);
    let trials = arg_value(&args, "--trials").unwrap_or(30_000.0) as u32;

    println!("Static validation: closed forms vs sampled quorum assembly (target n = {n}, p = {p}, {trials} trials)\n");
    // Each §4 configuration is one independent cell; fan the sampling out
    // across worker threads and collect rows in input order.
    let rows = parallel_map(Configuration::ALL.to_vec(), |config| {
        let proto = config.build(n);
        let (er, ew) = empirical_availability(proto.as_ref(), p, trials, 1);
        let (lr, lw) = empirical_load(proto.as_ref(), trials, 2);
        let (cr, cw) = empirical_cost(proto.as_ref(), trials, 3);
        vec![
            config.name().to_string(),
            proto.universe().len().to_string(),
            format!("{}/{}", fmt_f(proto.read_availability(p)), fmt_f(er)),
            format!("{}/{}", fmt_f(proto.write_availability(p)), fmt_f(ew)),
            format!("{}/{}", fmt_f(proto.read_load()), fmt_f(lr)),
            format!("{}/{}", fmt_f(proto.write_load()), fmt_f(lw)),
            format!("{}/{}", fmt_f(proto.read_cost().avg), fmt_f(cr)),
            format!("{}/{}", fmt_f(proto.write_cost().avg), fmt_f(cw)),
        ]
    });
    print!(
        "{}",
        render_table(
            &[
                "config",
                "n",
                "RDavail c/e",
                "WRavail c/e",
                "RDload c/e",
                "WRload c/e",
                "RDcost c/e",
                "WRcost c/e",
            ],
            &rows
        )
    );
    println!("(c = closed form, e = empirical; loads sampled under the canonical strategy)\n");

    println!("Dynamic validation: full event simulation with random crash/recovery\n");
    let cells: Vec<ExperimentCell> = ["1-3-5", "1-4-4-4-4", "1-16"]
        .into_iter()
        .map(|spec| {
            let proto = ArbitraryProtocol::parse(spec).expect("valid spec");
            let n_sites = proto.tree().replica_count();
            let config = SimConfig {
                seed: 7,
                duration: SimDuration::from_millis(300),
                ..SimConfig::default()
            };
            let schedule = FailureSchedule::random(
                n_sites,
                config.duration,
                SimDuration::from_millis(60),
                SimDuration::from_millis(15),
                13,
            );
            ExperimentCell::new(spec, config, proto).with_failures(schedule)
        })
        .collect();
    let rows: Vec<Vec<String>> = run_cells(cells)
        .into_iter()
        .map(|(spec, report)| {
            vec![
                spec,
                report.metrics.reads_ok.to_string(),
                report.metrics.reads_failed.to_string(),
                report.metrics.writes_ok.to_string(),
                report.metrics.writes_failed.to_string(),
                report.metrics.messages_sent.to_string(),
                if report.consistent {
                    "yes".into()
                } else {
                    format!("NO ({})", report.violations)
                },
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "tree",
                "reads_ok",
                "reads_fail",
                "writes_ok",
                "writes_fail",
                "msgs",
                "consistent"
            ],
            &rows
        )
    );
}
