//! `events` — raw event-engine throughput: the events/sec trajectory of
//! the discrete-event hot path (requires `--features reference-queue`).
//!
//! Two tiers, both fully deterministic in their workloads:
//!
//! * **Queue tier** — the classic *hold model* (constant pending set:
//!   pop-earliest, schedule a replacement) drives the production calendar
//!   queue and the pre-swap `BTreeQueue` baseline through the identical
//!   event sequence at pending-set sizes {7, 31, 127, 1023} × write-mix
//!   {10%, 50%, 90%}. The pop-order checksums must agree exactly (the
//!   queues are observationally identical; `crates/sim/tests/replay.rs`
//!   proves it, this re-checks it for free), and the headline **speedup
//!   gate** — calendar ≥ 3× the baseline (1× in smoke, where shared CI
//!   runners make timing unreliable) — anchors at the largest pending set,
//!   where the old `O(log n)` node churn hurt most.
//! * **Simulation tier** — whole-simulator events/sec over binary trees of
//!   7, 31 and 127 sites × read fractions {0.1, 0.5, 0.9}: every layer
//!   (queue, slab, outbox pooling, copy-free payload fan-out) in one
//!   number. Events are counted by a wrapping scheduler, so the figure is
//!   exact, not estimated. (1023 logical sites exceeds the 128-site
//!   `AliveSet`; the queue tier covers that size.)
//!
//! Usage: `events [--smoke] [--steps <n>] [--out <path>]` (defaults:
//! 2 000 000 hold steps per queue cell, 200 ms simulated per sim cell;
//! `--smoke` shrinks to 200 000 steps / 40 ms for CI but still writes the
//! JSON). The machine-readable trajectory goes to `BENCH_events.json` in
//! the shared `arbitree-bench-report/v1` envelope.
//!
//! Exit status is nonzero on a checksum mismatch between the two queues,
//! or when the calendar queue misses its speedup bar at 1023 pending.

use arbitree_analysis::report::{fmt_f, render_table};
use arbitree_bench::arg_value;
use arbitree_bench::events_driver::hold_model;
use arbitree_bench::report::{json_str, BenchReport, BenchRow};
use arbitree_core::ArbitraryProtocol;
use arbitree_sim::{
    BTreeQueue, EventKey, EventQueue, Scheduler, SimConfig, SimDuration, Simulation,
};
// arbitree-lint: allow(D002) — wall-clock timing of the bench harness itself, not simulated time
use std::time::Instant;

/// Pending-set sizes swept by the hold model; the last anchors the gate.
const PENDING: [usize; 4] = [7, 31, 127, 1023];
/// Write-path share of scheduled events, in permille.
const WRITE_MIX: [u64; 3] = [100, 500, 900];
/// Hold-model delay horizon: 4.1 ms spans dozens of calendar days
/// (64 us each), so the sweep crosses bucket hits, overflow inserts, and
/// window rotations.
const HORIZON_MICROS: u64 = 4_096;
/// Simulation tier: full binary trees of 7, 31, and 127 physical sites.
const SIM_SPECS: [(&str, usize); 3] = [("1-2-4", 7), ("1-2-4-8-16", 31), ("1-2-4-8-16-32-64", 127)];
/// Read fractions swept in the simulation tier.
const READ_FRACTIONS: [f64; 3] = [0.1, 0.5, 0.9];

/// One queue-tier cell: both engines' rates over the identical sequence.
struct QueueCell {
    pending: usize,
    write_permille: u64,
    calendar_eps: f64,
    btree_eps: f64,
    checksums_agree: bool,
}

impl QueueCell {
    fn speedup(&self) -> f64 {
        if self.btree_eps > 0.0 {
            self.calendar_eps / self.btree_eps
        } else {
            0.0
        }
    }
}

/// One simulation-tier cell.
struct SimCell {
    spec: &'static str,
    sites: usize,
    read_fraction: f64,
    events: u64,
    wall_ms: f64,
    ops_ok: u64,
    consistent: bool,
}

impl SimCell {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ms / 1_000.0).max(1e-9)
    }
}

/// Counts how many events the seeded policy fires.
struct CountingScheduler {
    events: u64,
}

impl Scheduler for CountingScheduler {
    fn select(&mut self, sim: &Simulation) -> Option<EventKey> {
        let key = sim.engine().queue().next_key();
        if key.is_some() {
            self.events += 1;
        }
        key
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let steps =
        arg_value(&args, "--steps").unwrap_or(if smoke { 200_000.0 } else { 2_000_000.0 }) as u64;
    let sim_ms = if smoke { 40 } else { 200 };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_events.json", String::as_str);

    println!(
        "Event-engine sweep: hold model {steps} steps x pending {PENDING:?} x write \
         {WRITE_MIX:?} permille; whole-sim {sim_ms} ms x {{7, 31, 127}} sites x read \
         {READ_FRACTIONS:?}{}",
        if smoke { " [smoke]" } else { "" }
    );

    // --- Queue tier -----------------------------------------------------
    // Best-of-N timing per engine: shared machines jitter by 10-20%, so a
    // single sample can misstate either side of the ratio by that much.
    // The fastest of three runs over identical deterministic work is the
    // engine's actual cost; every repetition must reproduce the same
    // checksum.
    let reps = if smoke { 2 } else { 3 };
    let timed = |run: &dyn Fn() -> (u64, u64)| {
        let _ = run(); // untimed warm-up: first-touch and allocator costs
        let mut best_eps = 0.0f64;
        let mut checksum = None;
        for _ in 0..reps {
            // arbitree-lint: allow(D002) — wall-clock timing of the bench itself
            let t0 = Instant::now();
            let (n, sum) = run();
            let eps = n as f64 / t0.elapsed().as_secs_f64().max(1e-9);
            best_eps = best_eps.max(eps);
            assert!(
                checksum.is_none_or(|c: u64| c == sum),
                "nondeterministic hold model"
            );
            checksum = Some(sum);
        }
        (best_eps, checksum.expect("at least one rep"))
    };
    let mut queue_cells: Vec<QueueCell> = Vec::new();
    for &pending in &PENDING {
        for &write_permille in &WRITE_MIX {
            let seed = 0xE7E2_0000 ^ ((pending as u64) << 16) ^ write_permille;
            let (calendar_eps, sum_cal) = timed(&|| {
                hold_model::<EventQueue>(seed, pending, steps, HORIZON_MICROS, write_permille)
            });
            let (btree_eps, sum_bt) = timed(&|| {
                hold_model::<BTreeQueue>(seed, pending, steps, HORIZON_MICROS, write_permille)
            });
            queue_cells.push(QueueCell {
                pending,
                write_permille,
                calendar_eps,
                btree_eps,
                checksums_agree: sum_cal == sum_bt,
            });
        }
    }

    let rows: Vec<Vec<String>> = queue_cells
        .iter()
        .map(|c| {
            vec![
                c.pending.to_string(),
                format!("{}%", c.write_permille / 10),
                fmt_f(c.calendar_eps / 1e6),
                fmt_f(c.btree_eps / 1e6),
                fmt_f(c.speedup()),
                if c.checksums_agree { "ok" } else { "DIVERGED" }.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "pending",
                "writes",
                "cal Mev/s",
                "btree Mev/s",
                "speedup",
                "order"
            ],
            &rows
        )
    );
    println!("(hold model; Mev/s = million pop+schedule events per wall second)");

    // --- Simulation tier ------------------------------------------------
    let mut sim_cells: Vec<SimCell> = Vec::new();
    for (spec, sites) in SIM_SPECS {
        for read_fraction in READ_FRACTIONS {
            let config = SimConfig {
                seed: 0xE7E2 ^ (sites as u64) ^ ((read_fraction * 1_000.0) as u64) << 8,
                clients: 8,
                objects: 1_024,
                duration: SimDuration::from_millis(sim_ms),
                think_time: SimDuration::from_micros(300),
                read_fraction,
                ..SimConfig::default()
            };
            let proto = ArbitraryProtocol::parse(spec).expect("valid tree spec");
            let mut sim = Simulation::new(config, proto);
            let mut scheduler = CountingScheduler { events: 0 };
            // arbitree-lint: allow(D002) — wall-clock timing of the bench itself
            let t0 = Instant::now();
            let report = sim.run_with(&mut scheduler);
            let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;
            sim_cells.push(SimCell {
                spec,
                sites,
                read_fraction,
                events: scheduler.events,
                wall_ms,
                ops_ok: report.metrics.ops_ok(),
                consistent: report.consistent,
            });
        }
    }

    let rows: Vec<Vec<String>> = sim_cells
        .iter()
        .map(|c| {
            vec![
                format!("{} ({} sites)", c.spec, c.sites),
                fmt_f(c.read_fraction),
                c.events.to_string(),
                fmt_f(c.events_per_sec() / 1e6),
                c.ops_ok.to_string(),
                fmt_f(c.wall_ms),
                if c.consistent { "ok" } else { "VIOLATED" }.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["tree", "reads", "events", "Mev/s", "ops", "wall ms", "1SR"],
            &rows
        )
    );
    println!("(whole-simulator events per wall second, every engine layer included)");

    // --- Gate -----------------------------------------------------------
    let gate_pending = PENDING[PENDING.len() - 1];
    let bar = if smoke { 1.0 } else { 3.0 };
    let gate_speedup = queue_cells
        .iter()
        .filter(|c| c.pending == gate_pending)
        .map(QueueCell::speedup)
        .fold(f64::INFINITY, f64::min);
    println!(
        "speedup @ {gate_pending} pending (worst mix): {}x (bar {}x, target 10x)",
        fmt_f(gate_speedup),
        fmt_f(bar)
    );

    let json = render_json(
        smoke,
        steps,
        sim_ms,
        gate_pending,
        gate_speedup,
        &queue_cells,
        &sim_cells,
    );
    std::fs::write(out_path, json).expect("write BENCH_events.json");
    println!("wrote {out_path}");

    if queue_cells.iter().any(|c| !c.checksums_agree) {
        println!("FAIL: calendar and reference queues disagreed on pop order");
        std::process::exit(1);
    }
    if sim_cells.iter().any(|c| !c.consistent) {
        println!("FAIL: one-copy violation in a simulation cell");
        std::process::exit(1);
    }
    if gate_speedup < bar {
        println!("FAIL: calendar queue below its {bar}x bar at {gate_pending} pending");
        std::process::exit(1);
    }
    println!("OK: pop order identical; calendar queue clears its {bar}x bar");
}

/// Machine-readable trajectory in the shared `arbitree-bench-report/v1`
/// envelope: queue-tier rows lead with the calendar events/sec, sim-tier
/// rows with the whole-simulator rate; the gate result rides as summary.
fn render_json(
    smoke: bool,
    steps: u64,
    sim_ms: u64,
    gate_pending: usize,
    gate_speedup: f64,
    queue_cells: &[QueueCell],
    sim_cells: &[SimCell],
) -> String {
    let mut report = BenchReport::new("events")
        .config("smoke", smoke)
        .config("hold_steps", steps)
        .config("hold_horizon_micros", HORIZON_MICROS)
        .config("sim_duration_ms", sim_ms);
    for c in queue_cells {
        report = report.row(
            BenchRow::rate(
                format!("queue p={} w={}", c.pending, c.write_permille),
                c.calendar_eps,
            )
            .field("tier", json_str("queue"))
            .field("pending", c.pending)
            .field("write_permille", c.write_permille)
            .field("btree_ops_per_sec", format!("{:.1}", c.btree_eps))
            .field("speedup", format!("{:.2}", c.speedup()))
            .field("order_identical", c.checksums_agree),
        );
    }
    for c in sim_cells {
        report = report.row(
            BenchRow::rate(
                format!("sim {} r={}", c.spec, c.read_fraction),
                c.events_per_sec(),
            )
            .field("tier", json_str("sim"))
            .field("tree", json_str(c.spec))
            .field("sites", c.sites)
            .field("read_fraction", c.read_fraction)
            .field("events", c.events)
            .field("ops_ok", c.ops_ok)
            .field("wall_ms", format!("{:.1}", c.wall_ms))
            .field("consistent", c.consistent),
        );
    }
    report
        .summary("gate_pending", gate_pending)
        .summary("gate_speedup", format!("{gate_speedup:.2}"))
        .to_json()
}
