//! `repair` — anti-entropy reconciliation cost sweep over the range-hash
//! tree.
//!
//! Drives the `arbitree-sync` protocol directly (in memory, no simulator:
//! the curve under test is a property of the tree and the probe protocol,
//! not of the network schedule) between a healthy source replica and a
//! partially-diverged rejoiner, sweeping the divergence size `d` over a
//! fixed `n`-key store. Each cell counts protocol messages (probes,
//! responses, fills), reconciliation rounds, and keys transferred, against
//! a full-state-transfer baseline of one message per stored key plus the
//! initiating request.
//!
//! The store scatters its `n` keys evenly across the whole `u32` key
//! space (stride `2^32 / n`), the layout an object-id hash produces, and
//! the divergent set is evenly spaced within the store — the adversarial
//! placement for range pruning, since clustered losses share probe paths
//! and cost strictly less. The claim under test: messages grow as
//! `O(d · log n)`, so the log-log fit of messages against `d` must have
//! slope ≈ 1 (the `log n` factor bends only the saturated small-`d` end),
//! and repair must beat full transfer by a wide margin at small `d`.
//!
//! Usage: `repair [--smoke] [--keys <n>] [--out <path>]` (defaults:
//! `n = 2^20`, `d ∈ {2^4 … 2^14}`; `--smoke` shrinks to `n = 2^16`,
//! `d ∈ {2^4 … 2^10}` for CI but still writes the JSON).
//!
//! Exit status is nonzero when any cell fails to converge to the source
//! store, when the fitted exponent leaves `[0.8, 1.2]`, or when repair at
//! `d = 2^10` (`2^8` in smoke) is not at least 10x (1x in smoke) cheaper
//! than the full-transfer baseline.

use arbitree_analysis::report::{fmt_f, render_table};
use arbitree_bench::arg_value;
use arbitree_bench::report::{BenchReport, BenchRow};
use arbitree_sync::{item_hash, respond, HTree, Response, Session};

/// Per-probe window: every pending range goes into flight at once, so one
/// `take_requests` drain is one network round and rounds track tree depth.
const WINDOW: usize = usize::MAX;
/// Round-trip estimate used for the latency column: the simulator's fixed
/// 100 us one-way latency, both directions.
const RTT_MICROS: u64 = 200;

/// One sweep cell: reconciliation cost at divergence size `d`.
struct Outcome {
    d: u64,
    messages: u64,
    rounds: u64,
    keys_transferred: u64,
}

impl Outcome {
    /// Estimated rejoin latency: pipelined probes pay one RTT per round.
    /// An estimate, not a measurement — the chaos campaign measures the
    /// real thing under load.
    fn est_latency_micros(&self) -> u64 {
        self.rounds * RTT_MICROS
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let n = arg_value(&args, "--keys").unwrap_or(if smoke { 65_536.0 } else { 1_048_576.0 }) as u64;
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_repair.json", String::as_str);
    assert!(n.is_power_of_two() && n <= 1 << 26, "keys: power of two");

    let d_max_log2 = if smoke { 10 } else { 14 };
    let ds: Vec<u64> = (4..=d_max_log2).map(|e| 1u64 << e).collect();
    // Full transfer ships every stored key (one message each) after one
    // request announcing the rejoin.
    let full_transfer = n + 1;
    // The improvement gate anchors below the sweep's top end, where
    // pruning still matters: d = 2^10 full, 2^8 smoke.
    let gate_d = if smoke { 1u64 << 8 } else { 1u64 << 10 };
    let gate_bar = if smoke { 1.0 } else { 10.0 };

    println!(
        "Repair sweep: {n}-key store scattered over the u32 key space, \
         d in 2^4..2^{d_max_log2}, full-transfer baseline {full_transfer} messages{}",
        if smoke { " [smoke]" } else { "" }
    );

    let stride = (1u64 << 32) / n;
    let src = build_store(n, stride);
    let outcomes: Vec<Outcome> = ds.iter().map(|&d| run_cell(&src, n, stride, d)).collect();

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.d.to_string(),
                o.messages.to_string(),
                o.rounds.to_string(),
                o.keys_transferred.to_string(),
                fmt_f(full_transfer as f64 / o.messages as f64),
                fmt_f(o.est_latency_micros() as f64 / 1_000.0),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["d", "msgs", "rounds", "keys", "vs-full", "est ms",],
            &rows
        )
    );
    println!(
        "(vs-full = full-transfer messages / repair messages; \
         est ms = rounds x {RTT_MICROS} us RTT, an estimate)"
    );

    // Log-log least-squares fit of messages against d: the claimed
    // O(d log n) cost must show up as slope ~ 1 in d.
    let exponent = fit_exponent(&outcomes);
    let gate_cell = outcomes
        .iter()
        .find(|o| o.d == gate_d)
        .expect("gate divergence is in the sweep");
    let improvement = full_transfer as f64 / gate_cell.messages as f64;
    println!(
        "fit: messages ~ d^{} (bar [0.8, 1.2]); at d={gate_d}: {}x cheaper \
         than full transfer (bar {}x)",
        fmt_f(exponent),
        fmt_f(improvement),
        fmt_f(gate_bar)
    );

    let json = render_json(
        smoke,
        n,
        full_transfer,
        exponent,
        gate_d,
        improvement,
        &outcomes,
    );
    std::fs::write(out_path, json).expect("write BENCH_repair.json");
    println!("wrote {out_path}");

    if !(0.8..=1.2).contains(&exponent) {
        println!(
            "FAIL: fitted exponent {} outside [0.8, 1.2]",
            fmt_f(exponent)
        );
        std::process::exit(1);
    }
    if improvement < gate_bar {
        println!(
            "FAIL: repair at d={gate_d} only {}x cheaper than full transfer",
            fmt_f(improvement)
        );
        std::process::exit(1);
    }
    println!("OK: exponent within [0.8, 1.2]; repair clears its {gate_bar}x bar at d={gate_d}");
}

/// A store of `n` keys at the given stride, each with a distinct value
/// hash (key-derived version/value so divergence is per-item detectable).
fn build_store(n: u64, stride: u64) -> HTree {
    let mut t = HTree::new();
    for i in 0..n {
        // Stride layout: key i * (2^32 / n) fits u32 by construction.
        // arbitree-lint: allow(D004) — i * stride < 2^32 for i < n
        let key = (i * stride) as u32;
        t.insert(key, item_hash(key, 1, 0, &key.to_le_bytes()));
    }
    t
}

/// Reconciles a rejoiner missing `d` evenly-spaced keys against `src`,
/// counting messages and rounds, and asserts it converges exactly.
fn run_cell(src: &HTree, n: u64, stride: u64, d: u64) -> Outcome {
    let mut dst = src.clone();
    let gap = n / d;
    for j in 0..d {
        // Offset into the middle of each gap so neither store edge is hit.
        // arbitree-lint: allow(D004) — store keys fit u32 by construction
        let key = ((j * gap + gap / 2) * stride) as u32;
        assert!(dst.remove(key), "divergent key must exist in the store");
    }

    let mut session = Session::new();
    let mut messages = 0u64;
    let mut rounds = 0u64;
    let mut keys_transferred = 0u64;
    while !session.is_done() {
        let reqs = session.take_requests(&dst, WINDOW);
        assert!(!reqs.is_empty(), "session stuck with work pending");
        rounds += 1;
        for (range, digest) in reqs {
            messages += 2; // probe + response
            let resp = respond(src, range, digest);
            if let Response::Fill(keys) = &resp {
                for &k in keys {
                    if dst.item(k) != src.item(k) {
                        keys_transferred += 1;
                        dst.insert(k, src.item(k).expect("responder holds key"));
                    }
                }
            }
            assert!(session.on_response(&dst, range, &resp));
        }
    }
    assert!(dst == *src, "reconciliation must converge exactly");
    // The requester only probes ranges it already knows diverge (children
    // are compared locally), so every probe below the root draws real work
    // — pruning shows up as the probes *not* sent, i.e. the gap to the
    // full-transfer baseline, not as `Match` responses.
    assert_eq!(session.stats.matches, 0, "no probe should be wasted");
    Outcome {
        d,
        messages,
        rounds,
        keys_transferred,
    }
}

/// Least-squares slope of `log2(messages)` against `log2(d)`.
fn fit_exponent(outcomes: &[Outcome]) -> f64 {
    let pts: Vec<(f64, f64)> = outcomes
        .iter()
        .map(|o| ((o.d as f64).log2(), (o.messages as f64).log2()))
        .collect();
    let k = pts.len() as f64;
    let mean_x = pts.iter().map(|p| p.0).sum::<f64>() / k;
    let mean_y = pts.iter().map(|p| p.1).sum::<f64>() / k;
    let num: f64 = pts.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let den: f64 = pts.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    num / den
}

/// Machine-readable report in the shared `arbitree-bench-report/v1`
/// envelope: one row per divergence size (a cost sweep, so no headline
/// rate), fit and gate results as summary keys.
fn render_json(
    smoke: bool,
    n: u64,
    full_transfer: u64,
    exponent: f64,
    gate_d: u64,
    improvement: f64,
    outcomes: &[Outcome],
) -> String {
    let mut report = BenchReport::new("repair")
        .config("smoke", smoke)
        .config("keys", n)
        .config("full_transfer_messages", full_transfer)
        .config("rtt_micros", RTT_MICROS);
    for o in outcomes {
        report = report.row(
            BenchRow::plain(format!("d={}", o.d))
                .field("divergence", o.d)
                .field("messages", o.messages)
                .field("rounds", o.rounds)
                .field("keys_transferred", o.keys_transferred)
                .field(
                    "improvement_vs_full",
                    format!("{:.1}", full_transfer as f64 / o.messages as f64),
                )
                .field("est_latency_micros", o.est_latency_micros()),
        );
    }
    report
        .summary("fit_exponent", format!("{exponent:.3}"))
        .summary("gate_divergence", gate_d)
        .summary("gate_improvement", format!("{improvement:.1}"))
        .to_json()
}
