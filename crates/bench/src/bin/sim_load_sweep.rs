//! Dynamic-simulation load sweep: runs the full event simulator (clients,
//! locks, 2PC, timeouts) for `ARBITRARY` trees across replica counts and
//! reports *measured* per-site loads, costs and success rates next to the
//! closed forms — the end-to-end counterpart of Figures 3 and 4.
//!
//! Usage: `sim_load_sweep [--seed <s>]`.

use arbitree_analysis::report::{fmt_f, render_table};
use arbitree_bench::arg_value;
use arbitree_core::builder::balanced;
use arbitree_core::{ArbitraryProtocol, ArbitraryTree, TreeMetrics};
use arbitree_sim::{run_cells, ExperimentCell, SimConfig, SimDuration};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_value(&args, "--seed").unwrap_or(1.0) as u64;

    println!("Dynamic-simulation sweep over Algorithm-1 trees (failure-free, seed {seed})\n");
    let sizes = [9usize, 16, 25, 36, 49, 66, 81, 100];
    let mut closed_forms = Vec::new();
    let cells: Vec<ExperimentCell> = sizes
        .iter()
        .map(|&n| {
            let spec = balanced(n).expect("valid n");
            let tree = ArbitraryTree::from_spec(&spec).expect("valid");
            let m = TreeMetrics::new(&tree);
            closed_forms.push((
                n,
                spec.to_string(),
                m.read_load(),
                m.write_load(),
                m.read_cost().avg,
                m.write_cost().avg,
            ));
            let config = SimConfig {
                seed,
                clients: 6,
                objects: 6,
                read_fraction: 0.5,
                duration: SimDuration::from_millis(400),
                ..SimConfig::default()
            };
            ExperimentCell::new(spec.to_string(), config, ArbitraryProtocol::new(tree))
        })
        .collect();
    let rows: Vec<Vec<String>> = run_cells(cells)
        .into_iter()
        .zip(closed_forms)
        .map(
            |((_, report), (n, spec, rd_load, wr_load, rd_cost, wr_cost))| {
                assert!(report.consistent, "n={n} violated consistency");
                vec![
                    n.to_string(),
                    spec,
                    format!(
                        "{}/{}",
                        fmt_f(rd_load),
                        report
                            .metrics
                            .empirical_read_load()
                            .map_or("-".into(), fmt_f)
                    ),
                    format!(
                        "{}/{}",
                        fmt_f(wr_load),
                        report
                            .metrics
                            .empirical_write_load()
                            .map_or("-".into(), fmt_f)
                    ),
                    format!(
                        "{}/{}",
                        fmt_f(rd_cost),
                        report
                            .metrics
                            .empirical_read_cost()
                            .map_or("-".into(), fmt_f)
                    ),
                    format!(
                        "{}/{}",
                        fmt_f(wr_cost),
                        report
                            .metrics
                            .empirical_write_cost()
                            .map_or("-".into(), fmt_f)
                    ),
                    report.metrics.ops_ok().to_string(),
                ]
            },
        )
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "n",
                "shape",
                "RDload c/e",
                "WRload c/e",
                "RDcost c/e",
                "WRcost c/e",
                "ops"
            ],
            &rows
        )
    );
    println!("\n(c = closed form, e = measured in the event simulation; e fluctuates with");
    println!(" the finite operation count but tracks c — see EXPERIMENTS.md)");
}
