//! Regenerates **Figure 2**: the read and write communication costs of the
//! six §4 configurations as the replica count grows.
//!
//! Usage: `fig2 [--n <max_n>]` (default 520).

use arbitree_analysis::report::{fmt_f, render_series};
use arbitree_analysis::figures::figure2;
use arbitree_bench::arg_value;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n = arg_value(&args, "--n").unwrap_or(520.0) as usize;

    println!("Figure 2 — communication costs of read and write operations (n up to {max_n})\n");
    let data = figure2(max_n);
    if args.iter().any(|a| a == "--csv") {
        print!(
            "{}",
            arbitree_analysis::report::render_csv(&data, &["read_cost", "write_cost"], |p| {
                vec![fmt_f(p.read_cost), fmt_f(p.write_cost)]
            })
        );
        return;
    }
    print!(
        "{}",
        render_series(&data, &["n", "read_cost", "write_cost"], |p| {
            vec![p.n.to_string(), fmt_f(p.read_cost), fmt_f(p.write_cost)]
        })
    );
    if let Some(i) = args.iter().position(|a| a == "--svg") {
        let dir = args.get(i + 1).cloned().unwrap_or_else(|| ".".into());
        let mut series = Vec::new();
        let mut configs: Vec<&'static str> = data.iter().map(|p| p.config).collect();
        configs.dedup();
        for config in configs {
            series.push(arbitree_analysis::chart::ChartSeries {
                label: config.to_string(),
                points: data
                    .iter()
                    .filter(|p| p.config == config)
                    .map(|p| (p.n as f64, p.write_cost))
                    .collect(),
            });
        }
        let svg = arbitree_analysis::svg::render_svg(&series, "Figure 2: write communication cost vs n", 860, 480);
        let path = std::path::Path::new(&dir).join("fig2_write_cost.svg");
        std::fs::write(&path, svg).expect("write svg");
        println!("wrote {}", path.display());
    }
    // Shape-at-a-glance chart of write cost per configuration.
    {
        use arbitree_analysis::chart::{render_chart, ChartSeries};
        let mut series = Vec::new();
        let mut configs: Vec<&'static str> = data.iter().map(|p| p.config).collect();
        configs.dedup();
        for config in configs {
            let points: Vec<(f64, f64)> = data
                .iter()
                .filter(|p| p.config == config)
                .map(|p| (p.n as f64, p.write_cost))
                .collect();
            series.push(ChartSeries { label: config.to_string(), points });
        }
        println!("write cost vs n:");
        println!("{}", render_chart(&series, 72, 18));
    }
    println!("Paper shape checks:");
    println!("  MOSTLY-READ: read cost 1, write cost n (ROWA extremes)");
    println!("  MOSTLY-WRITE: write cost ~2, read cost ~n/2");
    println!("  ARBITRARY: both costs ~sqrt(n); lowest write cost of the first four");
    println!("  BINARY: highest costs of the first four; UNMODIFIED: lowest read cost log2(n+1)");
}
