//! Regenerates **Figure 2**: the read and write communication costs of the
//! six §4 configurations as the replica count grows.
//!
//! Usage: `fig2 [--n <max_n>]` (default 520).

use arbitree_analysis::figures::{emit_figure_charts, figure2};
use arbitree_analysis::report::{fmt_f, render_series};
use arbitree_bench::arg_value;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n = arg_value(&args, "--n").unwrap_or(520.0) as usize;

    println!("Figure 2 — communication costs of read and write operations (n up to {max_n})\n");
    let data = figure2(max_n);
    if args.iter().any(|a| a == "--csv") {
        print!(
            "{}",
            arbitree_analysis::report::render_csv(&data, &["read_cost", "write_cost"], |p| {
                vec![fmt_f(p.read_cost), fmt_f(p.write_cost)]
            })
        );
        return;
    }
    print!(
        "{}",
        render_series(&data, &["n", "read_cost", "write_cost"], |p| {
            vec![p.n.to_string(), fmt_f(p.read_cost), fmt_f(p.write_cost)]
        })
    );
    emit_figure_charts(
        &data,
        |p| p.write_cost,
        &args,
        "Figure 2: write communication cost vs n",
        "fig2_write_cost.svg",
        "write cost vs n",
    );
    println!("Paper shape checks:");
    println!("  MOSTLY-READ: read cost 1, write cost n (ROWA extremes)");
    println!("  MOSTLY-WRITE: write cost ~2, read cost ~n/2");
    println!("  ARBITRARY: both costs ~sqrt(n); lowest write cost of the first four");
    println!("  BINARY: highest costs of the first four; UNMODIFIED: lowest read cost log2(n+1)");
}
