//! One-shot reproduction certificate: programmatically checks every claim
//! the paper makes in its evaluation and prints a PASS/FAIL checklist.
//!
//! Usage: `paper_report [--trials <k>]` (default 20000; raise for tighter
//! empirical tolerances).

use arbitree_analysis::stats::summarize;
use arbitree_analysis::{crossover, figures, metrics, Configuration};
use arbitree_bench::arg_value;
use arbitree_core::builder::{balanced, complete_binary, mostly_write};
use arbitree_core::{
    algorithm1_read_availability_limit, algorithm1_write_availability_limit, ArbitraryProtocol,
    ArbitraryTree, TreeMetrics,
};
use arbitree_sim::{
    empirical_availability, empirical_load, run_simulation, FailureSchedule, SimConfig, SimDuration,
};

struct Checklist {
    passed: u32,
    failed: u32,
}

impl Checklist {
    fn check(&mut self, claim: &str, ok: bool) {
        if ok {
            self.passed += 1;
            println!("  PASS  {claim}");
        } else {
            self.failed += 1;
            println!("  FAIL  {claim}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = arg_value(&args, "--trials").unwrap_or(20_000.0) as u32;
    let mut c = Checklist {
        passed: 0,
        failed: 0,
    };

    println!("== Table 1 / §3.4 running example (tree 1-3-5, p = 0.7) ==");
    let tree = ArbitraryTree::parse("1-3-5").expect("valid");
    let m = TreeMetrics::new(&tree);
    c.check("m(R) = 15, m(W) = 2", {
        arbitree_core::read_quorum_count(&tree) == Some(15)
            && arbitree_core::write_quorum_count(&tree) == 2
    });
    c.check("RD_cost = 2, WR_cost = 4 (min 3, max 5)", {
        m.read_cost().avg == 2.0
            && m.write_cost().avg == 4.0
            && m.write_cost().min == 3.0
            && m.write_cost().max == 5.0
    });
    c.check(
        "RDavail(0.7) ~ 0.97, WRavail(0.7) ~ 0.45",
        (m.read_availability(0.7) - 0.97).abs() < 5e-3
            && (m.write_availability(0.7) - 0.45).abs() < 5e-3,
    );
    c.check(
        "L_RD = 1/3, L_WR = 1/2; E[L_RD] ~ 0.35, E[L_WR] ~ 0.775",
        (m.read_load() - 1.0 / 3.0).abs() < 1e-12
            && (m.write_load() - 0.5).abs() < 1e-12
            && (m.expected_read_load(0.7) - 0.35).abs() < 5e-3
            && (m.expected_write_load(0.7) - 0.775).abs() < 5e-3,
    );

    println!("== Algorithm 1 (§3.3) ==");
    let ok = (65..=400).step_by(7).all(|n| {
        let t = ArbitraryTree::from_spec(&balanced(n).expect("valid")).expect("valid");
        let mm = TreeMetrics::new(&t);
        let k = (n as f64).sqrt().round();
        (mm.write_load() - 1.0 / k).abs() < 1e-9 && mm.read_load() == 0.25
    });
    c.check("write load 1/sqrt(n) and read load 1/4 for all n > 64", ok);
    c.check(
        "availability limits ~1 for p > 0.8",
        algorithm1_read_availability_limit(0.85) > 0.98
            && algorithm1_write_availability_limit(0.85) > 0.97,
    );

    println!("== §3.3 lower bound for the binary structure of [2] ==");
    let ok = (2..=10).all(|h| {
        let t = ArbitraryTree::from_spec(&complete_binary(h).expect("valid")).expect("valid");
        let n = t.replica_count() as f64;
        let mm = TreeMetrics::new(&t);
        mm.write_load() < 2.0 / ((n + 1.0).log2() + 1.0)
    });
    c.check("1/log2(n+1) < 2/(log2(n+1)+1) for every height", ok);

    println!("== Figure 2 shapes (communication costs) ==");
    let f2 = figures::figure2(300);
    c.check(
        "MOSTLY-READ costs 1/n; MOSTLY-WRITE write cost <= 2.5",
        f2.iter()
            .filter(|p| p.config == "MOSTLY-READ")
            .all(|p| p.read_cost == 1.0 && p.write_cost == p.n as f64)
            && f2
                .iter()
                .filter(|p| p.config == "MOSTLY-WRITE")
                .all(|p| p.write_cost <= 2.5),
    );
    c.check(
        "BINARY has the highest costs of the first four at n = 127",
        {
            let b = figures::point(Configuration::Binary, 127, 0.7);
            b.read_cost > figures::point(Configuration::Unmodified, 127, 0.7).read_cost
                && b.read_cost > figures::point(Configuration::Arbitrary, 127, 0.7).read_cost
                && b.read_cost > figures::point(Configuration::Hqc, 127, 0.7).read_cost
        },
    );
    c.check(
        "UNMODIFIED write cost crosses HQC's in the low hundreds",
        matches!(
            crossover(Configuration::Unmodified, Configuration::Hqc, metrics::write_cost, 3..600, 0.7),
            Some(n) if n < 600
        ),
    );

    println!("== Figure 3 shapes (read loads) ==");
    let f3 = figures::figure3(300, 0.7);
    c.check(
        "UNMODIFIED read load 1; ARBITRARY 1/4 beyond n = 32; MOSTLY-WRITE 1/2",
        f3.iter()
            .filter(|p| p.config == "UNMODIFIED")
            .all(|p| p.read_load == 1.0)
            && f3
                .iter()
                .filter(|p| p.config == "ARBITRARY" && p.n > 32)
                .all(|p| p.read_load == 0.25)
            && f3
                .iter()
                .filter(|p| p.config == "MOSTLY-WRITE")
                .all(|p| p.read_load == 0.5),
    );
    c.check(
        "HQC read load n^-0.37 is least of the first four at n = 243",
        {
            let hqc = figures::point(Configuration::Hqc, 243, 0.7);
            hqc.read_load < figures::point(Configuration::Binary, 243, 0.7).read_load
                && hqc.read_load < figures::point(Configuration::Arbitrary, 243, 0.7).read_load
                && hqc.read_load < figures::point(Configuration::Unmodified, 243, 0.7).read_load
        },
    );

    println!("== Figure 4 shapes (write loads) ==");
    c.check(
        "ARBITRARY has the least write load of the first four at n = 127",
        {
            let a = figures::point(Configuration::Arbitrary, 127, 0.7);
            a.write_load < figures::point(Configuration::Binary, 127, 0.7).write_load
                && a.write_load < figures::point(Configuration::Unmodified, 127, 0.7).write_load
                && a.write_load < figures::point(Configuration::Hqc, 127, 0.7).write_load
        },
    );
    c.check(
        "MOSTLY-WRITE write load = 2/(n-1) for odd n",
        [9usize, 45, 101].iter().all(|&n| {
            let t = ArbitraryTree::from_spec(&mostly_write(n).expect("valid")).expect("valid");
            (TreeMetrics::new(&t).write_load() - 2.0 / (n as f64 - 1.0)).abs() < 1e-12
        }),
    );

    println!("== Empirical cross-validation ({trials} trials) ==");
    let proto = ArbitraryProtocol::parse("1-3-5").expect("valid");
    let (er, ew) = empirical_availability(&proto, 0.7, trials, 1);
    c.check(
        "sampled availability matches closed forms within 0.01",
        (er - m.read_availability(0.7)).abs() < 0.01
            && (ew - m.write_availability(0.7)).abs() < 0.01,
    );
    let (lr, lw) = empirical_load(&proto, trials, 2);
    c.check(
        "sampled loads match closed forms within 0.01",
        (lr - 1.0 / 3.0).abs() < 0.01 && (lw - 0.5).abs() < 0.01,
    );

    println!("== Dynamic simulation (5 seeds, churn) ==");
    let mut read_costs = Vec::new();
    let mut consistent = true;
    for seed in 0..5 {
        let config = SimConfig {
            seed,
            duration: SimDuration::from_millis(200),
            ..SimConfig::default()
        };
        let schedule = FailureSchedule::random(
            8,
            config.duration,
            SimDuration::from_millis(60),
            SimDuration::from_millis(15),
            seed + 40,
        );
        let proto = ArbitraryProtocol::parse("1-3-5").expect("valid");
        let report = run_simulation(config, proto, &schedule);
        consistent &= report.consistent;
        if let Some(rc) = report.metrics.empirical_read_cost() {
            read_costs.push(rc);
        }
    }
    c.check("one-copy consistency holds in every seeded run", consistent);
    let rc = summarize(&read_costs);
    c.check(
        &format!("measured read cost {rc} equals RD_cost = 2"),
        (rc.mean - 2.0).abs() < 1e-9,
    );

    println!();
    println!("{} claims passed, {} failed", c.passed, c.failed);
    if c.failed > 0 {
        std::process::exit(1);
    }
}
