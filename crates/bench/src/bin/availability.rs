//! Regenerates the **§3.3 asymptotic availability** analysis: the limits
//! `lim RDavail = (1−(1−p)⁴)⁷` and `lim WRavail = 1−(1−p⁴)⁷` of
//! Algorithm-1 trees, together with finite-n values showing convergence.
//!
//! Usage: `availability [--n <finite_n>]` (default 400).

use arbitree_analysis::report::{fmt_f, render_table};
use arbitree_bench::arg_value;
use arbitree_core::builder::balanced;
use arbitree_core::{
    algorithm1_read_availability_limit, algorithm1_write_availability_limit, ArbitraryTree,
    TreeMetrics,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let finite_n = arg_value(&args, "--n").unwrap_or(400.0) as usize;

    let spec = balanced(finite_n).expect("n > 64");
    let tree = ArbitraryTree::from_spec(&spec).expect("valid");
    let m = TreeMetrics::new(&tree);

    println!("§3.3 — availability of Algorithm-1 trees: finite n = {finite_n} vs the n→∞ limits\n");
    let ps = [0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95];
    let rows: Vec<Vec<String>> = ps
        .iter()
        .map(|&p| {
            vec![
                fmt_f(p),
                fmt_f(m.read_availability(p)),
                fmt_f(algorithm1_read_availability_limit(p)),
                fmt_f(m.write_availability(p)),
                fmt_f(algorithm1_write_availability_limit(p)),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "p",
                "RDavail(n)",
                "lim RDavail",
                "WRavail(n)",
                "lim WRavail"
            ],
            &rows
        )
    );
    println!();
    println!("Paper claim: for p > 0.8 both operations have availability ~1.");
}
