//! Chaos campaign: sweeps seeded adversarial nemesis profiles over the
//! simulator and cross-validates measured availability against the paper's
//! closed forms.
//!
//! Every cell runs uncorrelated MTTF/MTTR churn whose steady-state uptime
//! `p = MTTF/(MTTF+MTTR)` feeds the closed forms (`∏_k (1 − (1−p)^{m_phy_k})`
//! for reads, `1 − ∏_k (1 − p^{m_phy_k})` for writes). The `churn` baseline
//! carries no nemesis, so its measured rates should *track* the prediction;
//! the adversarial cells layer a scripted nemesis on top, so their relative
//! error measures how far correlated faults push reality away from the
//! independence assumption. In every cell the hard requirement is the same:
//! zero one-copy serializability violations.
//!
//! Usage: `chaos [--smoke] [--seeds <k>] [--duration <ms>] [--tree <spec>]`
//! (defaults: 3 seeds, 3200 ms, `1-3-5`; `--smoke` shrinks to 2 seeds of
//! 1200 ms for CI).

use arbitree_analysis::report::{fmt_f, render_table};
use arbitree_bench::arg_value;
use arbitree_core::ArbitraryProtocol;
use arbitree_quorum::{steady_state_uptime, ReplicaControl};
use arbitree_sim::{
    build_profile, cell_seed, run_chaos_campaign, ChaosCell, ChaosOutcome, ExperimentCell,
    FailureSchedule, NemesisKind, RetryPolicy, SimConfig, SimDuration,
};

/// Mean time to failure of the uncorrelated churn process.
const MTTF: SimDuration = SimDuration::from_millis(240);
/// Mean time to repair of the uncorrelated churn process.
const MTTR: SimDuration = SimDuration::from_millis(60);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seeds = arg_value(&args, "--seeds").unwrap_or(if smoke { 2.0 } else { 3.0 }) as u64;
    let duration_ms =
        arg_value(&args, "--duration").unwrap_or(if smoke { 1200.0 } else { 3200.0 }) as u64;
    let spec = args
        .iter()
        .position(|a| a == "--tree")
        .and_then(|i| args.get(i + 1))
        .map_or("1-3-5", String::as_str);

    let duration = SimDuration::from_millis(duration_ms);
    let p = steady_state_uptime(MTTF.as_micros() as f64, MTTR.as_micros() as f64);
    let probe = ArbitraryProtocol::parse(spec).expect("valid tree spec");
    let predicted_read = probe.read_availability(p);
    let predicted_write = probe.write_availability(p);
    let levels: Vec<Vec<_>> = probe
        .tree()
        .physical_levels()
        .iter()
        .map(|&k| probe.tree().level_sites(k).to_vec())
        .collect();
    let n_sites = probe.tree().replica_count();

    println!(
        "Chaos campaign: tree {spec} ({n_sites} sites), {seeds} seeds x {} profiles, \
         {duration_ms} ms each",
        NemesisKind::ALL.len() + 1
    );
    println!(
        "Churn MTTF/MTTR = {}/{} ms -> steady-state p = {} \
         (closed forms: read {}, write {})\n",
        MTTF.as_micros() / 1_000,
        MTTR.as_micros() / 1_000,
        fmt_f(p),
        fmt_f(predicted_read),
        fmt_f(predicted_write),
    );

    // One cell per (profile, seed); "churn" is the nemesis-free baseline.
    let mut cells = Vec::new();
    for seed_idx in 0..seeds {
        for (profile_idx, profile) in [None]
            .into_iter()
            .chain(NemesisKind::ALL.map(Some))
            .enumerate()
        {
            let seed = cell_seed(0xC4A0_5EED, seed_idx * 64 + profile_idx as u64);
            // A few quick attempts make each operation a sample of "was a
            // quorum feasible right now": the first pick is blind, the
            // suspicion loop steers later picks around dead members, and
            // the attempt window stays well under MTTR so churn has no
            // time to repair mid-op. One attempt would under-measure
            // (blind picks hit dead sites); unbounded attempts would
            // over-measure (waiting out the repair process).
            let config = SimConfig {
                seed,
                duration,
                max_attempts: 3,
                // Long think times keep the closed-loop clients close to a
                // uniform-in-time sampler: a failed op burns ~12 ms of
                // timeouts, which would otherwise under-sample exactly the
                // bad periods the campaign wants to measure.
                think_time: SimDuration::from_millis(40),
                retry: RetryPolicy::Exponential {
                    cap: SimDuration::from_millis(24),
                    jitter: 0.25,
                },
                ..SimConfig::default()
            };
            let churn = FailureSchedule::random(n_sites, duration, MTTF, MTTR, seed ^ 0xF417);
            let name = profile.map_or("churn", NemesisKind::name);
            let mut cell = ExperimentCell::new(
                format!("{name} s{seed_idx}"),
                config,
                ArbitraryProtocol::parse(spec).expect("valid tree spec"),
            )
            .with_failures(churn);
            if let Some(kind) = profile {
                let nemesis =
                    build_profile(kind, &levels, cell.config.network, duration, seed ^ 0xBAD);
                cell = cell.with_nemesis(nemesis);
            }
            cells.push(ChaosCell {
                cell,
                predicted_read,
                predicted_write,
            });
        }
    }

    let outcomes = run_chaos_campaign(cells);
    let rows: Vec<Vec<String>> = outcomes.iter().map(row).collect();
    print!(
        "{}",
        render_table(
            &[
                "profile",
                "RDavail m/c",
                "RDerr",
                "WRavail m/c",
                "WRerr",
                "timeouts",
                "retries",
                "aborts",
                "suspects",
                "dropped",
                "rejoins",
                "1SR",
            ],
            &rows
        )
    );
    println!("(m = measured, c = closed form at steady-state p; err = relative error)");

    let violations: usize = outcomes.iter().map(|o| o.report.violations).sum();
    let inconsistent = outcomes.iter().filter(|o| !o.report.consistent).count();
    if violations > 0 || inconsistent > 0 {
        println!(
            "\nFAIL: {violations} one-copy violations across {inconsistent} inconsistent cells"
        );
        std::process::exit(1);
    }
    // Staged-rejoin gates: no reply was ever served by a non-`Serving`
    // site, and the amnesia profile actually completed its rejoins.
    let sync_violations: u64 = outcomes
        .iter()
        .map(|o| o.report.metrics.sync_violations)
        .sum();
    if sync_violations > 0 {
        println!("\nFAIL: {sync_violations} replies served by non-Serving sites");
        std::process::exit(1);
    }
    let amnesia_rejoins: u64 = outcomes
        .iter()
        .filter(|o| o.label.starts_with("amnesia-cold-start"))
        .map(|o| o.report.metrics.rejoins_completed)
        .sum();
    if amnesia_rejoins == 0 {
        println!("\nFAIL: no amnesia-cold-start cell completed a rejoin");
        std::process::exit(1);
    }
    println!(
        "\nOK: zero one-copy violations, zero syncing-serve violations, \
         {amnesia_rejoins} staged rejoins across all {} cells",
        outcomes.len()
    );
}

fn row(o: &ChaosOutcome) -> Vec<String> {
    let m = &o.report.metrics;
    let opt = |v: Option<f64>| v.map_or_else(|| "-".into(), fmt_f);
    vec![
        o.label.clone(),
        format!("{}/{}", opt(o.measured_read()), fmt_f(o.predicted_read)),
        opt(o.read_error()),
        format!("{}/{}", opt(o.measured_write()), fmt_f(o.predicted_write)),
        opt(o.write_error()),
        m.timeouts_fired.to_string(),
        (m.retries_read + m.retries_prepare + m.retries_commit).to_string(),
        (m.aborts_exhausted + m.aborts_conflict + m.aborts_no_quorum + m.aborts_reconfig)
            .to_string(),
        m.suspicions_raised.to_string(),
        m.messages_dropped().to_string(),
        m.rejoins_completed.to_string(),
        if o.report.consistent {
            "yes".into()
        } else {
            format!("NO ({})", o.report.violations)
        },
    ]
}
