//! `race_audit` — CI entry point for the arbitree-race concurrency
//! auditor (requires `--features race-audit`).
//!
//! Two halves, mirroring the detector's acceptance criteria:
//!
//! * **Smoke suite** — the real threaded harness paths (striped
//!   [`LockManager`] under four worker threads, [`parallel_map`], and a
//!   small chaos [`run_cells`] batch) each run under their own recording
//!   session and must analyze *clean*: zero data-race, lock-order, or
//!   misuse findings and zero dropped events.
//! * **Kill matrix** — every seeded [`RaceMutation`] runs its mutated
//!   scenario; the analyzer must report at least one finding of the
//!   mutation's defect class, and the unmutated suite must stay clean.
//!
//! Usage: `race_audit [--smoke] [--json <path>]` (default path
//! `RACE_report.json`; `--smoke` shrinks the chaos batch for CI). Exit
//! status is nonzero when any smoke scenario reports findings, any
//! mutant survives, or the unmutated baseline is dirty.

use arbitree_bench::report::{json_str, BenchReport, BenchRow};
use arbitree_core::ArbitraryProtocol;
use arbitree_race::{analyze, mutants, RaceMutation, RaceReport, Session};
use arbitree_sim::{
    build_profile, parallel_map, run_cells, ExperimentCell, FailureSchedule, LockManager, LockMode,
    NemesisKind, NetworkConfig, ObjectId, OpId, SimConfig, SimDuration,
};

/// One smoke scenario's outcome.
struct Smoke {
    name: &'static str,
    report: RaceReport,
}

impl Smoke {
    fn clean(&self) -> bool {
        self.report.clean()
    }
}

/// One kill-matrix row.
struct Kill {
    mutation: RaceMutation,
    killed: bool,
    findings: usize,
    trace: Vec<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map_or("RACE_report.json", String::as_str);

    println!(
        "race_audit: smoke suite + kill matrix{}",
        if smoke_mode { " [smoke]" } else { "" }
    );

    let smokes = vec![
        striped_lock_manager(),
        parallel_map_smoke(),
        chaos_batch(smoke_mode),
    ];
    for s in &smokes {
        println!(
            "smoke {:<22} {:>6} events  {} threads  {} locks  {} cells  {}",
            s.name,
            s.report.events,
            s.report.threads,
            s.report.locks,
            s.report.cells,
            if s.clean() { "clean" } else { "FINDINGS" }
        );
        if !s.clean() {
            print!("{}", s.report.render_text());
        }
    }

    let baseline = analyze(&mutants::run(None));
    println!(
        "baseline (all scenarios unmutated): {}",
        if baseline.clean() { "clean" } else { "DIRTY" }
    );

    let kills: Vec<Kill> = RaceMutation::ALL
        .iter()
        .map(|&mutation| {
            let report = analyze(&mutants::run(Some(mutation)));
            let hit = report.findings.iter().find(|f| mutation.kills(f));
            let kill = Kill {
                mutation,
                killed: hit.is_some(),
                findings: report.findings.len(),
                trace: hit.map(|f| f.trace.clone()).unwrap_or_default(),
            };
            println!(
                "mutant {:<18} {:<9} ({} finding{}) — {}",
                mutation.name(),
                if kill.killed { "killed" } else { "SURVIVED" },
                kill.findings,
                if kill.findings == 1 { "" } else { "s" },
                mutation.describe()
            );
            for line in &kill.trace {
                println!("    {line}");
            }
            kill
        })
        .collect();

    std::fs::write(
        json_path,
        render_json(smoke_mode, &smokes, &baseline, &kills),
    )
    .expect("write race report JSON");
    println!("wrote {json_path}");

    let dirty_smokes = smokes.iter().filter(|s| !s.clean()).count();
    let survivors = kills.iter().filter(|k| !k.killed).count();
    if dirty_smokes > 0 || survivors > 0 || !baseline.clean() {
        println!(
            "FAIL: {dirty_smokes} dirty smoke scenario(s), {survivors} surviving mutant(s){}",
            if baseline.clean() {
                ""
            } else {
                ", dirty baseline"
            }
        );
        std::process::exit(1);
    }
    println!(
        "OK: {} smoke scenarios clean; {}/{} mutants killed",
        smokes.len(),
        kills.len(),
        kills.len()
    );
}

/// Four worker threads hammer disjoint object ranges of an 8-stripe
/// [`LockManager`]; the striped table's internal locking must leave no
/// unordered shared accesses behind.
fn striped_lock_manager() -> Smoke {
    const THREADS: u32 = 4;
    const OPS: u32 = 200;
    let lm = LockManager::striped(8);
    let session = Session::start();
    arbitree_race::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let lm = &lm;
                s.spawn(move |_| {
                    let base = t * 64;
                    for i in 0..OPS {
                        let obj = ObjectId(base + i % 16);
                        let op = OpId(u64::from(t) * 10_000 + u64::from(i));
                        let mode = if i % 3 == 0 {
                            LockMode::Read
                        } else {
                            LockMode::Write
                        };
                        lm.acquire(op, obj, mode);
                        lm.holds(op, obj);
                        lm.release(op, obj);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("stress thread");
        }
    })
    .expect("stress scope");
    Smoke {
        name: "striped-lock-manager",
        report: analyze(&session.finish()),
    }
}

/// The work-stealing map over 128 items: index claims via traced mutexes,
/// results returned over the traced channel.
fn parallel_map_smoke() -> Smoke {
    let session = Session::start();
    let out = parallel_map((0..128u64).collect(), |i| i.wrapping_mul(0x9E37_79B9));
    assert_eq!(out.len(), 128);
    Smoke {
        name: "parallel-map",
        report: analyze(&session.finish()),
    }
}

/// A small chaos batch through [`run_cells`]: crash/restart schedules on
/// even seeds, partition cycles on odd seeds.
fn chaos_batch(smoke_mode: bool) -> Smoke {
    use arbitree_quorum::SiteId;
    let cells: Vec<ExperimentCell> = (0..if smoke_mode { 4u64 } else { 8u64 })
        .map(|seed| {
            let config = SimConfig {
                seed,
                duration: SimDuration::from_millis(if smoke_mode { 60 } else { 150 }),
                ..SimConfig::default()
            };
            let mut cell = ExperimentCell::new(format!("cell-{seed}"), config.clone(), proto());
            if seed % 2 == 0 {
                cell = cell.with_failures(FailureSchedule::random(
                    8,
                    config.duration,
                    SimDuration::from_millis(20),
                    SimDuration::from_millis(5),
                    seed + 11,
                ));
            } else {
                let levels: Vec<Vec<SiteId>> =
                    vec![vec![SiteId::new(0)], (1..4).map(SiteId::new).collect()];
                cell = cell.with_nemesis(build_profile(
                    NemesisKind::PartitionCycles,
                    &levels,
                    NetworkConfig::default(),
                    config.duration,
                    seed + 7,
                ));
            }
            cell
        })
        .collect();
    let session = Session::start();
    let results = run_cells(cells);
    assert!(!results.is_empty());
    Smoke {
        name: "run-cells-chaos",
        report: analyze(&session.finish()),
    }
}

fn proto() -> ArbitraryProtocol {
    ArbitraryProtocol::parse("1-3-5").expect("valid tree spec")
}

/// Hand-rolled JSON (the workspace vendors no serde): stable key order,
/// one object per smoke scenario and kill-matrix row.
fn render_json(
    smoke_mode: bool,
    smokes: &[Smoke],
    baseline: &RaceReport,
    kills: &[Kill],
) -> String {
    // Shared `arbitree-bench-report/v1` envelope: smoke scenarios are the
    // rows (audits measure cleanliness, not a rate), the kill matrix rides
    // along as a summary payload.
    let mut report = BenchReport::new("race_audit").config("smoke_mode", smoke_mode);
    for sm in smokes {
        report = report.row(
            BenchRow::plain(sm.name)
                .field("clean", sm.clean())
                .field("findings", sm.report.findings.len())
                .field("events", sm.report.events)
                .field("dropped", sm.report.dropped)
                .field("threads", sm.report.threads)
                .field("locks", sm.report.locks)
                .field("cells", sm.report.cells)
                .field("hb_suppressed", sm.report.hb_suppressed),
        );
    }
    let mut matrix = String::from("[\n");
    for (i, k) in kills.iter().enumerate() {
        matrix.push_str(&format!(
            "    {{\"mutation\": {}, \"killed\": {}, \"findings\": {}, \"trace\": [",
            json_str(k.mutation.name()),
            k.killed,
            k.findings
        ));
        for (j, line) in k.trace.iter().enumerate() {
            matrix.push_str(&format!(
                "{}{}",
                json_str(line),
                if j + 1 < k.trace.len() { ", " } else { "" }
            ));
        }
        matrix.push_str(&format!(
            "]}}{}\n",
            if i + 1 < kills.len() { "," } else { "" }
        ));
    }
    matrix.push_str("  ]");
    report
        .summary("baseline_clean", baseline.clean())
        .summary("kill_matrix", matrix)
        .summary("killed", kills.iter().filter(|k| k.killed).count())
        .summary("total", kills.len())
        .to_json()
}
