//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Read strategy**: the paper's uniform per-level sampling vs a naive
//!    deterministic "first replica of each level" strategy — shows why the
//!    uniform strategy is the one achieving the optimal load `1/d`.
//! 2. **Algorithm 1's shape**: the fixed `4×7` prefix vs a plain even `√n`
//!    split — shows what the prefix buys (availability at small p) and what
//!    it costs (worst-case write cost).
//! 3. **Availability evaluators**: exact enumeration vs Monte-Carlo error at
//!    matching budgets.
//!
//! Usage: `ablations [--n <n>]` (default 100).

use arbitree_analysis::report::{fmt_f, render_table};
use arbitree_bench::arg_value;
use arbitree_core::builder::{balanced, even_levels};
use arbitree_core::{ArbitraryProtocol, ArbitraryTree, TreeMetrics};
use arbitree_quorum::{
    exact_availability, monte_carlo_availability, AliveSet, QuorumSet, ReplicaControl, SetSystem,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_value(&args, "--n").unwrap_or(100.0) as usize;

    strategy_ablation();
    shape_ablation(n);
    availability_ablation();
    degraded_cost_ablation();
}

/// Ablation 4: communication costs under failures. The tree-quorum
/// protocol's costs inflate as it detours around dead nodes; the arbitrary
/// protocol's read cost is structurally fixed at |K_phy|.
fn degraded_cost_ablation() {
    use arbitree_baselines::TreeQuorum;
    use arbitree_sim::{empirical_cost_under_failures, parallel_map};
    println!("\nAblation 4 — mean read cost under failures (20k alive-set samples)\n");
    let tq = TreeQuorum::new(3); // n = 15
    let arb = ArbitraryProtocol::parse("1-4-4-7").expect("valid"); // n = 15
                                                                   // Each availability point is an independent sampling cell with its own
                                                                   // fixed seeds, so the fan-out changes wall-clock time only.
    let rows: Vec<Vec<String>> = parallel_map(vec![1.0f64, 0.9, 0.8, 0.7], |p| {
        let (tq_cost, _) = empirical_cost_under_failures(&tq, p, 20_000, 1);
        let (arb_cost, _) = empirical_cost_under_failures(&arb, p, 20_000, 2);
        vec![
            fmt_f(p),
            tq_cost.map_or("-".into(), fmt_f),
            arb_cost.map_or("-".into(), fmt_f),
        ]
    });
    print!(
        "{}",
        render_table(&["p", "tree-quorum n=15", "arbitrary 1-4-4-7"], &rows)
    );
    println!("(the tree-quorum path inflates as failures force child detours;\n the arbitrary read quorum is always |K_phy| replicas)");
}

/// Ablation 1: uniform vs first-of-level read strategies on 1-3-5.
fn strategy_ablation() {
    println!("Ablation 1 — read-quorum strategy on tree 1-3-5 (60k samples)\n");
    let proto = ArbitraryProtocol::parse("1-3-5").expect("valid");
    let tree = proto.tree().clone();
    let n = tree.replica_count();
    let samples = 60_000u32;
    let mut rng = StdRng::seed_from_u64(1);
    let alive = AliveSet::full(n);

    // Uniform (the paper's strategy, via the protocol).
    let mut uniform_hits = vec![0u64; n];
    for _ in 0..samples {
        let q = proto.pick_read_quorum(alive, &mut rng).expect("alive");
        for s in q.iter() {
            uniform_hits[s.index()] += 1;
        }
    }
    // Naive: always the first replica of every physical level.
    let naive_quorum: QuorumSet = QuorumSet::from_sites(
        tree.physical_levels()
            .iter()
            .map(|&k| tree.level_sites(k)[0]),
    );
    let mut naive_hits = vec![0u64; n];
    for _ in 0..samples {
        for s in naive_quorum.iter() {
            naive_hits[s.index()] += 1;
        }
    }

    let load = |hits: &[u64]| *hits.iter().max().unwrap() as f64 / f64::from(samples);
    let rows = vec![
        vec![
            "uniform (paper)".into(),
            fmt_f(load(&uniform_hits)),
            fmt_f(TreeMetrics::new(&tree).read_load()),
        ],
        vec![
            "first-of-level".into(),
            fmt_f(load(&naive_hits)),
            "1.0000".into(),
        ],
    ];
    print!(
        "{}",
        render_table(&["strategy", "empirical max load", "theoretical"], &rows)
    );
    println!("(the naive strategy concentrates every read on the same d replicas)\n");
}

/// Ablation 2: Algorithm 1's 4×7 prefix vs a plain even √n split at size n.
fn shape_ablation(n: usize) {
    println!("Ablation 2 — Algorithm 1 shape vs plain even sqrt(n) split (n = {n})\n");
    let alg1 = balanced(n).expect("n > 64 recommended");
    let k = alg1.physical_levels().len();
    let even = even_levels(n, k).expect("valid");
    let rows: Vec<Vec<String>> = [("algorithm 1", &alg1), ("even split", &even)]
        .into_iter()
        .map(|(name, spec)| {
            let tree = ArbitraryTree::from_spec(spec).expect("valid");
            let m = TreeMetrics::new(&tree);
            vec![
                name.to_string(),
                spec.to_string(),
                fmt_f(m.read_load()),
                fmt_f(m.write_load()),
                fmt_f(m.write_cost().max),
                fmt_f(m.read_availability(0.7)),
                fmt_f(m.write_availability(0.7)),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "shape",
                "spec",
                "L_RD",
                "L_WR",
                "WRcost max",
                "RDavail(.7)",
                "WRavail(.7)"
            ],
            &rows
        )
    );
    println!("(the 4-wide prefix bounds read load at 1/4 and keeps small-level write\n quorums cheap; the even split trades those for a lower worst-case write cost)\n");
}

/// Ablation 3: exact vs Monte-Carlo availability on an enumerable system.
fn availability_ablation() {
    println!("Ablation 3 — availability evaluators on tree 1-3-5\n");
    let proto = ArbitraryProtocol::parse("1-3-5").expect("valid");
    let reads = SetSystem::new(proto.universe(), proto.read_quorums().collect()).expect("valid");
    let p = 0.7;
    let exact = exact_availability(&reads, p);
    let rows: Vec<Vec<String>> = [100u32, 1_000, 10_000, 100_000]
        .into_iter()
        .map(|samples| {
            let mut rng = StdRng::seed_from_u64(9);
            let mc = monte_carlo_availability(&reads, p, samples, &mut rng);
            vec![
                samples.to_string(),
                fmt_f(mc),
                fmt_f(exact),
                fmt_f((mc - exact).abs()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["MC samples", "estimate", "exact", "abs error"], &rows)
    );
}
