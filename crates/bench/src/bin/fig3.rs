//! Regenerates **Figure 3**: the system loads and expected system loads of
//! read operations for the six §4 configurations.
//!
//! Usage: `fig3 [--n <max_n>] [--p <availability>]` (defaults 520, 0.7).

use arbitree_analysis::figures::figure3;
use arbitree_analysis::report::{fmt_f, render_series};
use arbitree_bench::arg_value;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n = arg_value(&args, "--n").unwrap_or(520.0) as usize;
    let p = arg_value(&args, "--p").unwrap_or(0.7);

    println!("Figure 3 — (expected) system loads of read operations (n up to {max_n}, p = {p})\n");
    let data = figure3(max_n, p);
    if args.iter().any(|a| a == "--csv") {
        print!(
            "{}",
            arbitree_analysis::report::render_csv(&data, &["read_load", "expected_read_load", "read_availability"], |p| {
                vec![fmt_f(p.read_load), fmt_f(p.expected_read_load), fmt_f(p.read_availability)]
            })
        );
        return;
    }
    print!(
        "{}",
        render_series(
            &data,
            &["n", "read_load", "E[read_load]", "read_avail"],
            |pt| {
                vec![
                    pt.n.to_string(),
                    fmt_f(pt.read_load),
                    fmt_f(pt.expected_read_load),
                    fmt_f(pt.read_availability),
                ]
            }
        )
    );
    if let Some(i) = args.iter().position(|a| a == "--svg") {
        let dir = args.get(i + 1).cloned().unwrap_or_else(|| ".".into());
        let mut series = Vec::new();
        let mut configs: Vec<&'static str> = data.iter().map(|p| p.config).collect();
        configs.dedup();
        for config in configs {
            series.push(arbitree_analysis::chart::ChartSeries {
                label: config.to_string(),
                points: data
                    .iter()
                    .filter(|p| p.config == config)
                    .map(|p| (p.n as f64, p.expected_read_load))
                    .collect(),
            });
        }
        let svg = arbitree_analysis::svg::render_svg(&series, "Figure 3: expected read load vs n (p as given)", 860, 480);
        let path = std::path::Path::new(&dir).join("fig3_read_load.svg");
        std::fs::write(&path, svg).expect("write svg");
        println!("wrote {}", path.display());
    }
    // Shape-at-a-glance chart of E[read load] per configuration.
    {
        use arbitree_analysis::chart::{render_chart, ChartSeries};
        let mut series = Vec::new();
        let mut configs: Vec<&'static str> = data.iter().map(|p| p.config).collect();
        configs.dedup();
        for config in configs {
            let points: Vec<(f64, f64)> = data
                .iter()
                .filter(|p| p.config == config)
                .map(|p| (p.n as f64, p.expected_read_load))
                .collect();
            series.push(ChartSeries { label: config.to_string(), points });
        }
        println!("E[read load] vs n:");
        println!("{}", render_chart(&series, 72, 18));
    }
    println!("Paper shape checks:");
    println!("  MOSTLY-READ: lowest (1/n, stable); MOSTLY-WRITE: 1/2, unstable");
    println!("  UNMODIFIED: highest, 1 (root in every read quorum)");
    println!("  HQC: least of the first four (n^-0.37); ARBITRARY: 1/4 for n > 32");
    println!("  BINARY: 2/(log2(n+1)+1)");
}
