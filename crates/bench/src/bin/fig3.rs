//! Regenerates **Figure 3**: the system loads and expected system loads of
//! read operations for the six §4 configurations.
//!
//! Usage: `fig3 [--n <max_n>] [--p <availability>]` (defaults 520, 0.7).

use arbitree_analysis::figures::{emit_figure_charts, figure3};
use arbitree_analysis::report::{fmt_f, render_series};
use arbitree_bench::arg_value;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n = arg_value(&args, "--n").unwrap_or(520.0) as usize;
    let p = arg_value(&args, "--p").unwrap_or(0.7);

    println!("Figure 3 — (expected) system loads of read operations (n up to {max_n}, p = {p})\n");
    let data = figure3(max_n, p);
    if args.iter().any(|a| a == "--csv") {
        print!(
            "{}",
            arbitree_analysis::report::render_csv(
                &data,
                &["read_load", "expected_read_load", "read_availability"],
                |p| {
                    vec![
                        fmt_f(p.read_load),
                        fmt_f(p.expected_read_load),
                        fmt_f(p.read_availability),
                    ]
                }
            )
        );
        return;
    }
    print!(
        "{}",
        render_series(
            &data,
            &["n", "read_load", "E[read_load]", "read_avail"],
            |pt| {
                vec![
                    pt.n.to_string(),
                    fmt_f(pt.read_load),
                    fmt_f(pt.expected_read_load),
                    fmt_f(pt.read_availability),
                ]
            }
        )
    );
    emit_figure_charts(
        &data,
        |p| p.expected_read_load,
        &args,
        "Figure 3: expected read load vs n (p as given)",
        "fig3_read_load.svg",
        "E[read load] vs n",
    );
    println!("Paper shape checks:");
    println!("  MOSTLY-READ: lowest (1/n, stable); MOSTLY-WRITE: 1/2, unstable");
    println!("  UNMODIFIED: highest, 1 (root in every read quorum)");
    println!("  HQC: least of the first four (n^-0.37); ARBITRARY: 1/4 for n > 32");
    println!("  BINARY: 2/(log2(n+1)+1)");
}
