//! `throughput` — keyed-keyspace throughput sweep over the sharded engine.
//!
//! Sweeps shard count × object distribution × batching over a ≥1M-key
//! keyspace on the ARBITRARY `1-3-5` tree: every cell runs the same
//! closed-loop multi-object transaction workload and reports sustained
//! committed operations per simulated second plus *message efficiency*
//! (committed ops per network message). The machine-readable baseline goes
//! to `BENCH_throughput.json`.
//!
//! What the sweep is measuring:
//!
//! * **Shards** — independent protocol instances the keyspace hashes
//!   across. More shards shorten lock conflicts (striped lock tables) but
//!   do not change quorum sizes, so ops/sec per *simulated* second mainly
//!   moves with contention, and wall-clock throughput with engine work.
//! * **Distribution** — `uniform` vs `zipfian(1.0)`: skew concentrates
//!   traffic on hot keys (and therefore hot shards/stripes).
//! * **Batching** — same-destination payloads issued in one scheduling
//!   instant coalesce into one envelope, and reads gather all targets in a
//!   single parallel round; the tree root sits in every read quorum, so
//!   multi-object transactions coalesce heavily there.
//!
//! Usage: `throughput [--smoke] [--keys <n>] [--duration <ms>]
//! [--clients <n>] [--out <path>]` (defaults: 1 048 576 keys, 400 ms,
//! 16 clients; `--smoke` shrinks to 65 536 keys / 60 ms / 8 clients for CI
//! but still writes the JSON).
//!
//! Exit status is nonzero on any one-copy violation, or when batching
//! fails its message-efficiency bar at the largest shard count (≥2× the
//! unbatched ops-per-message in the full sweep).

use arbitree_analysis::report::{fmt_f, render_table};
use arbitree_bench::arg_value;
use arbitree_bench::report::{json_str, BenchReport, BenchRow};
use arbitree_core::ArbitraryProtocol;
use arbitree_quorum::ReplicaControl;
use arbitree_sim::{cell_seed, ObjectDistribution, SimConfig, SimDuration, SimReport, Simulation};
// arbitree-lint: allow(D002) — wall-clock timing of the bench harness itself, not simulated time
use std::time::Instant;

/// Tree spec every cell runs on (9 physical sites, root on every read path).
const SPEC: &str = "1-3-5";
/// Shard counts swept, ascending; the last one anchors the efficiency gate.
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// One cell of the sweep and its measured outcome.
struct Outcome {
    shards: usize,
    dist_name: &'static str,
    batching: bool,
    seed: u64,
    wall_ms: f64,
    report: SimReport,
}

impl Outcome {
    fn label(&self) -> String {
        format!(
            "s={:<2} {:7} {}",
            self.shards,
            self.dist_name,
            if self.batching { "batch" } else { "plain" }
        )
    }

    /// Committed operations (reads + writes that returned to a client).
    fn ops(&self) -> u64 {
        self.report.metrics.ops_ok()
    }

    /// Committed ops per network message — the efficiency the batching
    /// layer is supposed to buy.
    fn ops_per_message(&self) -> f64 {
        let msgs = self.report.metrics.messages_sent.max(1);
        self.ops() as f64 / msgs as f64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let keys =
        arg_value(&args, "--keys").unwrap_or(if smoke { 65_536.0 } else { 1_048_576.0 }) as usize;
    let duration_ms =
        arg_value(&args, "--duration").unwrap_or(if smoke { 60.0 } else { 400.0 }) as u64;
    let clients = arg_value(&args, "--clients").unwrap_or(if smoke { 8.0 } else { 16.0 }) as usize;
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_throughput.json", String::as_str);

    let duration = SimDuration::from_millis(duration_ms);
    let dists: [(&str, ObjectDistribution); 2] = [
        ("uniform", ObjectDistribution::Uniform),
        ("zipfian", ObjectDistribution::Zipfian { exponent: 1.0 }),
    ];

    println!(
        "Throughput sweep: tree {SPEC}, {keys} keys, {clients} clients, {duration_ms} ms \
         simulated per cell, shards {SHARD_COUNTS:?} x {{uniform, zipfian(1.0)}} x \
         {{plain, batch}}{}",
        if smoke { " [smoke]" } else { "" }
    );

    // Cells run sequentially so each wall-clock figure is unperturbed by
    // sibling cells competing for cores.
    let mut outcomes: Vec<Outcome> = Vec::new();
    let mut idx = 0u64;
    for &shards in &SHARD_COUNTS {
        for (dist_name, dist) in dists {
            for batching in [false, true] {
                let seed = cell_seed(0x7B40_0B47, idx);
                idx += 1;
                let config = SimConfig {
                    seed,
                    clients,
                    objects: keys,
                    duration,
                    think_time: SimDuration::from_micros(300),
                    read_fraction: 0.5,
                    max_txn_ops: 16,
                    shards,
                    batching,
                    object_distribution: dist,
                    ..SimConfig::default()
                };
                let protocols: Vec<Box<dyn ReplicaControl>> = (0..shards)
                    .map(|_| {
                        Box::new(ArbitraryProtocol::parse(SPEC).expect("valid tree spec"))
                            as Box<dyn ReplicaControl>
                    })
                    .collect();
                let mut sim = Simulation::from_shards(config, protocols);
                // arbitree-lint: allow(D002) — wall-clock timing of the bench harness itself
                let t0 = Instant::now();
                let report = sim.run();
                let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;
                outcomes.push(Outcome {
                    shards,
                    dist_name,
                    batching,
                    seed,
                    wall_ms,
                    report,
                });
            }
        }
    }

    let sim_secs = duration_ms as f64 / 1_000.0;
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            let m = &o.report.metrics;
            vec![
                o.label(),
                m.txns_ok.to_string(),
                o.ops().to_string(),
                fmt_f(o.ops() as f64 / sim_secs),
                m.messages_sent.to_string(),
                m.batches_sent.to_string(),
                fmt_f(o.ops_per_message()),
                fmt_f(o.wall_ms),
                if o.report.consistent {
                    "ok"
                } else {
                    "VIOLATED"
                }
                .to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["cell", "txns", "ops", "ops/sec", "msgs", "batches", "ops/msg", "wall ms", "1SR",],
            &rows
        )
    );
    println!("(ops/sec = committed ops per simulated second; ops/msg = per network message)");

    // Efficiency gate: at the largest shard count, batching must deliver
    // at least `bar`x the unbatched ops-per-message for every distribution.
    let max_shards = SHARD_COUNTS[SHARD_COUNTS.len() - 1];
    let bar = if smoke { 1.0 } else { 2.0 };
    let mut gains: Vec<(&str, f64)> = Vec::new();
    let mut gate_failed = false;
    for (dist_name, _) in dists {
        let eff = |batching: bool| {
            outcomes
                .iter()
                .find(|o| {
                    o.shards == max_shards && o.dist_name == dist_name && o.batching == batching
                })
                .map_or(0.0, Outcome::ops_per_message)
        };
        let (off, on) = (eff(false), eff(true));
        let gain = if off > 0.0 { on / off } else { 0.0 };
        println!(
            "batching gain @ {max_shards} shards, {dist_name}: {} -> {} ops/msg ({}x, bar {}x)",
            fmt_f(off),
            fmt_f(on),
            fmt_f(gain),
            fmt_f(bar)
        );
        if gain < bar {
            gate_failed = true;
        }
        gains.push((dist_name, gain));
    }

    let json = render_json(
        smoke,
        keys,
        clients,
        duration_ms,
        max_shards,
        &outcomes,
        &gains,
    );
    std::fs::write(out_path, json).expect("write BENCH_throughput.json");
    println!("wrote {out_path}");

    let violations: usize = outcomes.iter().map(|o| o.report.violations).sum();
    let inconsistent = outcomes.iter().filter(|o| !o.report.consistent).count();
    if violations > 0 || inconsistent > 0 {
        println!("FAIL: {violations} violations across {inconsistent} inconsistent cells");
        std::process::exit(1);
    }
    if gate_failed {
        println!("FAIL: batching below its {bar}x message-efficiency bar at {max_shards} shards");
        std::process::exit(1);
    }
    println!("OK: zero one-copy violations; batching clears its efficiency bar");
}

/// Machine-readable report in the shared `arbitree-bench-report/v1`
/// envelope: one row per sweep cell, headline `ops_per_sec` in simulated
/// seconds, the batching-efficiency gains as a summary key.
fn render_json(
    smoke: bool,
    keys: usize,
    clients: usize,
    duration_ms: u64,
    max_shards: usize,
    outcomes: &[Outcome],
    gains: &[(&str, f64)],
) -> String {
    let sim_secs = duration_ms as f64 / 1_000.0;
    let mut report = BenchReport::new("throughput")
        .config("tree", json_str(SPEC))
        .config("smoke", smoke)
        .config("keys", keys)
        .config("clients", clients)
        .config("duration_ms", duration_ms)
        .config("read_fraction", 0.5)
        .config("max_txn_ops", 16);
    for o in outcomes {
        let m = &o.report.metrics;
        report = report.row(
            BenchRow::rate(o.label().trim(), o.ops() as f64 / sim_secs)
                .field("shards", o.shards)
                .field("distribution", json_str(o.dist_name))
                .field("batching", o.batching)
                .field("seed", o.seed)
                .field("txns_ok", m.txns_ok)
                .field("ops_ok", o.ops())
                .field(
                    "ops_per_wall_sec",
                    format!("{:.1}", o.ops() as f64 / (o.wall_ms / 1_000.0).max(1e-9)),
                )
                .field("messages_sent", m.messages_sent)
                .field("batches_sent", m.batches_sent)
                .field("batched_payloads", m.batched_payloads)
                .field("ops_per_message", format!("{:.4}", o.ops_per_message()))
                .field("wall_ms", format!("{:.1}", o.wall_ms))
                .field("violations", o.report.violations)
                .field("consistent", o.report.consistent),
        );
    }
    let mut gain_obj = String::from("{");
    for (i, (dist_name, gain)) in gains.iter().enumerate() {
        gain_obj.push_str(&format!(
            "{}{}: {gain:.3}",
            if i == 0 { "" } else { ", " },
            json_str(dist_name)
        ));
    }
    gain_obj.push('}');
    report
        .summary(&format!("efficiency_gain_at_{max_shards}_shards"), gain_obj)
        .to_json()
}
