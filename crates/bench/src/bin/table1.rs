//! Regenerates **Table 1** of the paper: the total, physical and logical
//! node counts of every level of the Figure 1 tree (spec `1-3-5` with four
//! logical filler nodes on level 2).

use arbitree_analysis::report::render_table;
use arbitree_core::{ArbitraryTree, LevelSpec, TreeSpec};

fn main() {
    let spec = TreeSpec::new(vec![
        LevelSpec::logical(1),
        LevelSpec::physical(3),
        LevelSpec {
            physical: 5,
            logical: 4,
        },
    ]);
    let tree = ArbitraryTree::from_spec(&spec).expect("Figure 1 tree is valid");

    println!(
        "Table 1 — node bookkeeping of the Figure 1 tree ({})\n",
        tree.spec()
    );
    let rows: Vec<Vec<String>> = (0..=tree.height())
        .map(|k| {
            vec![
                format!("m_{k} = {}", tree.level_total(k)),
                format!("m_phy{k} = {}", tree.level_physical(k)),
                format!("m_log{k} = {}", tree.level_logical(k)),
            ]
        })
        .collect();
    print!("{}", render_table(&["m_k", "m_phy_k", "m_log_k"], &rows));

    println!();
    println!("n        = {}", tree.replica_count());
    println!(
        "K_phy    = {:?}  (|K_phy| = {})",
        tree.physical_levels(),
        tree.physical_level_count()
    );
    println!(
        "K_log    = {:?}  (|K_log| = {})",
        tree.logical_levels(),
        tree.logical_levels().len()
    );
    println!(
        "m(R)     = {}",
        arbitree_core::read_quorum_count(&tree).expect("small tree")
    );
    println!("m(W)     = {}", arbitree_core::write_quorum_count(&tree));
}
