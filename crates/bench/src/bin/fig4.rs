//! Regenerates **Figure 4**: the system loads and expected system loads of
//! write operations for the six §4 configurations, plus the §3.3
//! lower-bound comparison for the binary tree structure of \[2\].
//!
//! Usage: `fig4 [--n <max_n>] [--p <availability>]` (defaults 520, 0.7).

use arbitree_analysis::figures::{emit_figure_charts, figure4, lower_bound_comparison};
use arbitree_analysis::report::{fmt_f, render_series, render_table};
use arbitree_bench::arg_value;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n = arg_value(&args, "--n").unwrap_or(520.0) as usize;
    let p = arg_value(&args, "--p").unwrap_or(0.7);

    println!("Figure 4 — (expected) system loads of write operations (n up to {max_n}, p = {p})\n");
    let data = figure4(max_n, p);
    if args.iter().any(|a| a == "--csv") {
        print!(
            "{}",
            arbitree_analysis::report::render_csv(
                &data,
                &["write_load", "expected_write_load", "write_availability"],
                |p| {
                    vec![
                        fmt_f(p.write_load),
                        fmt_f(p.expected_write_load),
                        fmt_f(p.write_availability),
                    ]
                }
            )
        );
        return;
    }
    print!(
        "{}",
        render_series(
            &data,
            &["n", "write_load", "E[write_load]", "write_avail"],
            |pt| {
                vec![
                    pt.n.to_string(),
                    fmt_f(pt.write_load),
                    fmt_f(pt.expected_write_load),
                    fmt_f(pt.write_availability),
                ]
            }
        )
    );

    emit_figure_charts(
        &data,
        |p| p.expected_write_load,
        &args,
        "Figure 4: expected write load vs n (p as given)",
        "fig4_write_load.svg",
        "E[write load] vs n",
    );
    println!("§3.3 new lower bound for the binary structure of [2]:");
    println!("(UNMODIFIED write load 1/log2(n+1) vs Naor–Wool 2/(log2(n+1)+1))\n");
    let rows: Vec<Vec<String>> = lower_bound_comparison(max_n)
        .into_iter()
        .map(|(n, ours, nw)| vec![n.to_string(), fmt_f(ours), fmt_f(nw)])
        .collect();
    print!(
        "{}",
        render_table(&["n", "1/log2(n+1)", "2/(log2(n+1)+1)"], &rows)
    );

    println!();
    println!("Paper shape checks:");
    println!("  MOSTLY-READ: highest (1); MOSTLY-WRITE: least, 2/(n-1) for odd n");
    println!("  BINARY: highest of the first four; ARBITRARY: least (1/sqrt(n))");
    println!("  UNMODIFIED: second lowest, 1/log2(n+1); HQC: best expected load for large n");
}
