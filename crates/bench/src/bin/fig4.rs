//! Regenerates **Figure 4**: the system loads and expected system loads of
//! write operations for the six §4 configurations, plus the §3.3
//! lower-bound comparison for the binary tree structure of \[2\].
//!
//! Usage: `fig4 [--n <max_n>] [--p <availability>]` (defaults 520, 0.7).

use arbitree_analysis::figures::{figure4, lower_bound_comparison};
use arbitree_analysis::report::{fmt_f, render_series, render_table};
use arbitree_bench::arg_value;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n = arg_value(&args, "--n").unwrap_or(520.0) as usize;
    let p = arg_value(&args, "--p").unwrap_or(0.7);

    println!("Figure 4 — (expected) system loads of write operations (n up to {max_n}, p = {p})\n");
    let data = figure4(max_n, p);
    if args.iter().any(|a| a == "--csv") {
        print!(
            "{}",
            arbitree_analysis::report::render_csv(&data, &["write_load", "expected_write_load", "write_availability"], |p| {
                vec![fmt_f(p.write_load), fmt_f(p.expected_write_load), fmt_f(p.write_availability)]
            })
        );
        return;
    }
    print!(
        "{}",
        render_series(
            &data,
            &["n", "write_load", "E[write_load]", "write_avail"],
            |pt| {
                vec![
                    pt.n.to_string(),
                    fmt_f(pt.write_load),
                    fmt_f(pt.expected_write_load),
                    fmt_f(pt.write_availability),
                ]
            }
        )
    );

    if let Some(i) = args.iter().position(|a| a == "--svg") {
        let dir = args.get(i + 1).cloned().unwrap_or_else(|| ".".into());
        let mut series = Vec::new();
        let mut configs: Vec<&'static str> = data.iter().map(|p| p.config).collect();
        configs.dedup();
        for config in configs {
            series.push(arbitree_analysis::chart::ChartSeries {
                label: config.to_string(),
                points: data
                    .iter()
                    .filter(|p| p.config == config)
                    .map(|p| (p.n as f64, p.expected_write_load))
                    .collect(),
            });
        }
        let svg = arbitree_analysis::svg::render_svg(&series, "Figure 4: expected write load vs n (p as given)", 860, 480);
        let path = std::path::Path::new(&dir).join("fig4_write_load.svg");
        std::fs::write(&path, svg).expect("write svg");
        println!("wrote {}", path.display());
    }
    // Shape-at-a-glance chart of E[write load] per configuration.
    {
        use arbitree_analysis::chart::{render_chart, ChartSeries};
        let mut series = Vec::new();
        let mut configs: Vec<&'static str> = data.iter().map(|p| p.config).collect();
        configs.dedup();
        for config in configs {
            let points: Vec<(f64, f64)> = data
                .iter()
                .filter(|p| p.config == config)
                .map(|p| (p.n as f64, p.expected_write_load))
                .collect();
            series.push(ChartSeries { label: config.to_string(), points });
        }
        println!("E[write load] vs n:");
        println!("{}", render_chart(&series, 72, 18));
    }
    println!("§3.3 new lower bound for the binary structure of [2]:");
    println!("(UNMODIFIED write load 1/log2(n+1) vs Naor–Wool 2/(log2(n+1)+1))\n");
    let rows: Vec<Vec<String>> = lower_bound_comparison(max_n)
        .into_iter()
        .map(|(n, ours, nw)| vec![n.to_string(), fmt_f(ours), fmt_f(nw)])
        .collect();
    print!("{}", render_table(&["n", "1/log2(n+1)", "2/(log2(n+1)+1)"], &rows));

    println!();
    println!("Paper shape checks:");
    println!("  MOSTLY-READ: highest (1); MOSTLY-WRITE: least, 2/(n-1) for odd n");
    println!("  BINARY: highest of the first four; ARBITRARY: least (1/sqrt(n))");
    println!("  UNMODIFIED: second lowest, 1/log2(n+1); HQC: best expected load for large n");
}
