//! # arbitree-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation. Each artifact has a dedicated binary:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — node bookkeeping of the Figure 1 tree |
//! | `example_3_4` | §3.4 — the running example's metrics |
//! | `fig2` | Figure 2 — communication costs of the six configurations |
//! | `fig3` | Figure 3 — (expected) read loads |
//! | `fig4` | Figure 4 — (expected) write loads + the §3.3 lower-bound table |
//! | `availability` | §3.3 — asymptotic availability limits |
//! | `sim_validate` | simulator-measured availability/load/cost vs closed forms |
//!
//! Run any of them with `cargo run -p arbitree-bench --bin <name> --release`.
//!
//! The `race_audit` binary (behind `--features race-audit`) is the CI
//! entry point for the concurrency auditor: it runs the threaded-harness
//! smoke suite under recording sessions plus the seeded-mutation kill
//! matrix, and writes `RACE_report.json`.
//!
//! Criterion microbenchmarks live in `benches/`: quorum enumeration and
//! picking, LP-solver scaling, simulator throughput, and the ablations
//! DESIGN.md calls out.

/// Shared command-line helper: parse `--n <max_n>` and `--p <prob>` style
/// arguments with defaults, ignoring anything else.
pub fn arg_value(args: &[String], key: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// The shared machine-readable report format every `BENCH_*.json` /
/// `RACE_report.json` artifact uses.
///
/// Envelope (`arbitree-bench-report/v1`):
///
/// ```json
/// {
///   "schema": "arbitree-bench-report/v1",
///   "bench": "<name>",
///   "git_rev": "<hex or \"unknown\">",
///   "config": { ...bench parameters... },
///   "rows": [ {"name": "...", "ops_per_sec": 1234.5, ...}, ... ],
///   ...bench-specific summary keys...
/// }
/// ```
///
/// Every row carries a `name`; rows that measure a rate also carry
/// `ops_per_sec` as the headline figure, so cross-bench tooling can plot
/// any artifact's trajectory without knowing its cell layout. All other
/// fields are bench-specific and pass through as raw JSON values.
///
/// The workspace vendors no serde, so values are raw pre-formatted JSON
/// fragments (use [`json_str`] for string values) and the builder emits
/// the document by hand with stable key order.
pub mod report {
    /// Quotes and escapes a string as a JSON string literal.
    pub fn json_str(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// The commit under measurement: `git rev-parse HEAD`, or `"unknown"`
    /// when git is unavailable (tarball builds, stripped CI runners).
    pub fn git_rev() -> String {
        std::process::Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    }

    /// One report row: a label, an optional headline rate, and bench-
    /// specific extra fields (raw JSON values, emitted in insertion order).
    pub struct BenchRow {
        name: String,
        ops_per_sec: Option<f64>,
        fields: Vec<(String, String)>,
    }

    impl BenchRow {
        /// A row with a headline ops/sec figure.
        pub fn rate(name: impl Into<String>, ops_per_sec: f64) -> Self {
            BenchRow {
                name: name.into(),
                ops_per_sec: Some(ops_per_sec),
                fields: Vec::new(),
            }
        }

        /// A row without a rate (cost sweeps, pass/fail matrices).
        pub fn plain(name: impl Into<String>) -> Self {
            BenchRow {
                name: name.into(),
                ops_per_sec: None,
                fields: Vec::new(),
            }
        }

        /// Appends a bench-specific field; `value` is a raw JSON fragment.
        pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Self {
            self.fields.push((key.to_string(), value.to_string()));
            self
        }
    }

    /// Builder for one report document.
    pub struct BenchReport {
        name: String,
        git_rev: String,
        config: Vec<(String, String)>,
        rows: Vec<BenchRow>,
        summary: Vec<(String, String)>,
    }

    impl BenchReport {
        /// Starts a report for the named bench, capturing the git revision.
        pub fn new(name: &str) -> Self {
            BenchReport {
                name: name.to_string(),
                git_rev: git_rev(),
                config: Vec::new(),
                rows: Vec::new(),
                summary: Vec::new(),
            }
        }

        /// Adds a config entry; `value` is a raw JSON fragment.
        pub fn config(mut self, key: &str, value: impl std::fmt::Display) -> Self {
            self.config.push((key.to_string(), value.to_string()));
            self
        }

        /// Adds a row.
        pub fn row(mut self, row: BenchRow) -> Self {
            self.rows.push(row);
            self
        }

        /// Adds a bench-specific top-level summary key; `value` is a raw
        /// JSON fragment (scalars, or whole arrays/objects for payloads
        /// like a kill matrix).
        pub fn summary(mut self, key: &str, value: impl std::fmt::Display) -> Self {
            self.summary.push((key.to_string(), value.to_string()));
            self
        }

        /// Renders the document. Stable key order: envelope, config, rows,
        /// then summary keys in insertion order.
        pub fn to_json(&self) -> String {
            let mut s = String::new();
            s.push_str("{\n");
            s.push_str("  \"schema\": \"arbitree-bench-report/v1\",\n");
            s.push_str(&format!("  \"bench\": {},\n", json_str(&self.name)));
            s.push_str(&format!("  \"git_rev\": {},\n", json_str(&self.git_rev)));
            s.push_str("  \"config\": {");
            for (i, (k, v)) in self.config.iter().enumerate() {
                s.push_str(&format!(
                    "{}{}: {}",
                    if i == 0 { "" } else { ", " },
                    json_str(k),
                    v
                ));
            }
            s.push_str("},\n");
            s.push_str("  \"rows\": [\n");
            for (i, row) in self.rows.iter().enumerate() {
                s.push_str(&format!("    {{\"name\": {}", json_str(&row.name)));
                if let Some(rate) = row.ops_per_sec {
                    s.push_str(&format!(", \"ops_per_sec\": {rate:.1}"));
                }
                for (k, v) in &row.fields {
                    s.push_str(&format!(", {}: {}", json_str(k), v));
                }
                s.push_str(&format!(
                    "}}{}\n",
                    if i + 1 < self.rows.len() { "," } else { "" }
                ));
            }
            s.push_str("  ]");
            for (k, v) in &self.summary {
                s.push_str(&format!(",\n  {}: {}", json_str(k), v));
            }
            s.push_str("\n}\n");
            s
        }
    }
}

/// Shared driver for the event-queue microbench tier: the same synthetic
/// hold-model workload runs against the production calendar queue and
/// (behind `--features reference-queue`) the pre-calendar `BTreeQueue`
/// oracle, so the `events` bin and the criterion bench measure identical
/// work on both sides of the swap.
pub mod events_driver {
    use arbitree_sim::{
        ClientId, Endpoint, Event, EventQueue, Message, ObjectId, OpId, Payload, SimTime,
    };

    /// The queue API surface the driver needs — identical on
    /// [`EventQueue`] and the reference `BTreeQueue`, so the driver is
    /// generic over which engine it exercises.
    pub trait DriveQueue: Default {
        /// Schedules `event` at `at`.
        fn schedule(&mut self, at: SimTime, event: Event);
        /// The earliest pending key (what the seeded scheduler selects).
        fn next_key(&self) -> Option<arbitree_sim::EventKey>;
        /// Removes the pending event with `key`.
        fn take(&mut self, key: arbitree_sim::EventKey) -> Option<(SimTime, Event)>;
        /// Pending-event count.
        fn len(&self) -> usize;
        /// Whether the queue is empty.
        fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl DriveQueue for EventQueue {
        fn schedule(&mut self, at: SimTime, event: Event) {
            EventQueue::schedule(self, at, event);
        }
        fn next_key(&self) -> Option<arbitree_sim::EventKey> {
            EventQueue::next_key(self)
        }
        fn take(&mut self, key: arbitree_sim::EventKey) -> Option<(SimTime, Event)> {
            EventQueue::take(self, key)
        }
        fn len(&self) -> usize {
            EventQueue::len(self)
        }
    }

    #[cfg(feature = "reference-queue")]
    impl DriveQueue for arbitree_sim::BTreeQueue {
        fn schedule(&mut self, at: SimTime, event: Event) {
            arbitree_sim::BTreeQueue::schedule(self, at, event);
        }
        fn next_key(&self) -> Option<arbitree_sim::EventKey> {
            arbitree_sim::BTreeQueue::next_key(self)
        }
        fn take(&mut self, key: arbitree_sim::EventKey) -> Option<(SimTime, Event)> {
            arbitree_sim::BTreeQueue::take(self, key)
        }
        fn len(&self) -> usize {
            arbitree_sim::BTreeQueue::len(self)
        }
    }

    /// Deterministic splitmix64 stream — the driver's only randomness, so
    /// both queues see the exact same schedule sequence.
    pub struct Rng(u64);

    impl Rng {
        /// A stream seeded for one cell.
        pub fn new(seed: u64) -> Self {
            Rng(seed)
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A value in `0..bound` (multiply-shift reduction: the driver sits
        /// inside the timed loop, and a hardware divide per call would be a
        /// bigger cost than the queue operation being measured).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// The event mix scheduled by the driver: light timer ticks
    /// (read-dominated schedules are mostly client wakeups and quorum
    /// probes) vs. delivered write-path messages carrying full payloads.
    /// `tag` varies the field contents; whether this event is a write is
    /// the caller's Bresenham accumulator's call, not a coin flip, so the
    /// mix fraction is exact and the branch is a learnable pattern — the
    /// cell measures the queue, not the branch predictor.
    fn make_event(tag: u64, is_write: bool) -> Event {
        if is_write {
            Event::Deliver(Message {
                from: Endpoint::Client(ClientId(tag as u32)),
                to: Endpoint::Site(arbitree_quorum::SiteId::new((tag % 7) as u32)),
                payload: Payload::ReadReq {
                    op: OpId(tag),
                    obj: ObjectId(tag as u32),
                },
                sent_at: SimTime::ZERO,
            })
        } else {
            Event::ClientTick(ClientId(tag as u32))
        }
    }

    /// Runs the hold model: prefill `pending` events, then `steps` times
    /// fire the earliest event and schedule a replacement at `now + delay`
    /// with delays drawn from `0..horizon_micros`. The pending-set size
    /// stays constant — the classic priority-queue benchmark — and each
    /// step counts as one event processed. Firing mirrors the engine's
    /// seeded loop exactly: `next_key()` (the scheduler's select) followed
    /// by `take(key)` (the step), not a fused pop. The write mix is a
    /// Bresenham interleave (exactly `write_permille` writes per 1000
    /// events, evenly spread), and each step draws one RNG word that
    /// seeds both the delay and the event's field tag. Returns the events
    /// processed (== `steps`) and a checksum of fire order so the compiler
    /// cannot elide the work (and so both queues can be asserted to
    /// agree).
    pub fn hold_model<Q: DriveQueue>(
        seed: u64,
        pending: usize,
        steps: u64,
        horizon_micros: u64,
        write_permille: u64,
    ) -> (u64, u64) {
        let mut rng = Rng::new(seed);
        let mut q = Q::default();
        let mut acc = 0u64;
        let next_is_write = |acc: &mut u64| {
            *acc += write_permille;
            let w = *acc >= 1_000;
            if w {
                *acc -= 1_000;
            }
            w
        };
        for _ in 0..pending {
            let r = rng.next_u64();
            let at = SimTime::from_micros(mul_shift(r, horizon_micros));
            q.schedule(at, make_event(r & 0x3FF, next_is_write(&mut acc)));
        }
        let mut checksum = 0u64;
        for _ in 0..steps {
            let key = q.next_key().expect("hold model never drains");
            let (at, ev) = q.take(key).expect("selected key is pending");
            checksum = checksum
                .rotate_left(7)
                .wrapping_add(at.as_micros())
                .wrapping_add(match ev {
                    Event::ClientTick(c) => u64::from(c.0),
                    _ => 1_000_000,
                });
            let r = rng.next_u64();
            let next =
                at + arbitree_sim::SimDuration::from_micros(mul_shift(r, horizon_micros).max(1));
            q.schedule(next, make_event(r & 0x3FF, next_is_write(&mut acc)));
        }
        (steps, checksum)
    }

    /// `(x * bound) >> 64`: maps a full-range word into `0..bound` without
    /// a divide.
    fn mul_shift(x: u64, bound: u64) -> u64 {
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["prog", "--n", "200", "--p", "0.8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--n"), Some(200.0));
        assert_eq!(arg_value(&args, "--p"), Some(0.8));
        assert_eq!(arg_value(&args, "--x"), None);
        // Malformed value → None.
        let bad: Vec<String> = ["prog", "--n"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&bad, "--n"), None);
    }

    #[test]
    fn bench_report_envelope_and_rows() {
        let json = report::BenchReport::new("demo")
            .config("keys", 1024)
            .config("mode", report::json_str("smoke"))
            .row(report::BenchRow::rate("cell-a", 1234.56).field("msgs", 42))
            .row(report::BenchRow::plain("cell-b").field("ok", true))
            .summary("gate_passed", true)
            .to_json();
        assert!(json.starts_with("{\n  \"schema\": \"arbitree-bench-report/v1\",\n"));
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"git_rev\": \""));
        assert!(json.contains("\"config\": {\"keys\": 1024, \"mode\": \"smoke\"}"));
        assert!(json.contains("{\"name\": \"cell-a\", \"ops_per_sec\": 1234.6, \"msgs\": 42},"));
        assert!(json.contains("{\"name\": \"cell-b\", \"ok\": true}"));
        assert!(json.ends_with("  ],\n  \"gate_passed\": true\n}\n"));
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(report::json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(report::json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn git_rev_is_hex_or_unknown() {
        let rev = report::git_rev();
        assert!(
            rev == "unknown" || (rev.len() == 40 && rev.chars().all(|c| c.is_ascii_hexdigit())),
            "unexpected git_rev: {rev}"
        );
    }
}
