//! # arbitree-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation. Each artifact has a dedicated binary:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — node bookkeeping of the Figure 1 tree |
//! | `example_3_4` | §3.4 — the running example's metrics |
//! | `fig2` | Figure 2 — communication costs of the six configurations |
//! | `fig3` | Figure 3 — (expected) read loads |
//! | `fig4` | Figure 4 — (expected) write loads + the §3.3 lower-bound table |
//! | `availability` | §3.3 — asymptotic availability limits |
//! | `sim_validate` | simulator-measured availability/load/cost vs closed forms |
//!
//! Run any of them with `cargo run -p arbitree-bench --bin <name> --release`.
//!
//! The `race_audit` binary (behind `--features race-audit`) is the CI
//! entry point for the concurrency auditor: it runs the threaded-harness
//! smoke suite under recording sessions plus the seeded-mutation kill
//! matrix, and writes `RACE_report.json`.
//!
//! Criterion microbenchmarks live in `benches/`: quorum enumeration and
//! picking, LP-solver scaling, simulator throughput, and the ablations
//! DESIGN.md calls out.

/// Shared command-line helper: parse `--n <max_n>` and `--p <prob>` style
/// arguments with defaults, ignoring anything else.
pub fn arg_value(args: &[String], key: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["prog", "--n", "200", "--p", "0.8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--n"), Some(200.0));
        assert_eq!(arg_value(&args, "--p"), Some(0.8));
        assert_eq!(arg_value(&args, "--x"), None);
        // Malformed value → None.
        let bad: Vec<String> = ["prog", "--n"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&bad, "--n"), None);
    }
}
