//! Criterion benches for the instrumentation cost of the arbitree-race
//! traced primitives on the two hottest harness paths: [`parallel_map`]
//! over a trivial closure (the worst case — per-item work is nearly free,
//! so the traced mutex claims and channel sends dominate) and a small
//! [`run_cells`] batch (the realistic case — simulation work dwarfs the
//! recording).
//!
//! Build it twice to fill EXPERIMENTS.md's overhead table:
//!
//! * default features — the wrappers are zero-cost passthroughs;
//! * `--features race-audit` — the `no-session` benches measure the
//!   enabled-but-idle cost (one atomic check per operation), and the
//!   additional `recorded` benches wrap each iteration in a live
//!   [`Session`] and so include event recording *and* the drain.

use arbitree_core::ArbitraryProtocol;
use arbitree_sim::{parallel_map, run_cells, ExperimentCell, SimConfig, SimDuration};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Fast-but-meaningful defaults so the full suite finishes in minutes.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20)
        .configure_from_args()
}

const ITEMS: u64 = 256;

fn map_once() -> u64 {
    parallel_map((0..ITEMS).collect(), |i| i.wrapping_mul(0x9E37_79B9))
        .into_iter()
        .fold(0, u64::wrapping_add)
}

fn cells() -> Vec<ExperimentCell> {
    (0..2u64)
        .map(|seed| {
            ExperimentCell::new(
                format!("bench-{seed}"),
                SimConfig {
                    seed,
                    duration: SimDuration::from_millis(20),
                    ..SimConfig::default()
                },
                ArbitraryProtocol::parse("1-3-5").expect("valid tree spec"),
            )
        })
        .collect()
}

fn bench_parallel_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("race_overhead/parallel_map");
    g.bench_function("no-session", |b| b.iter(|| black_box(map_once())));
    #[cfg(feature = "race-audit")]
    g.bench_function("recorded", |b| {
        b.iter(|| {
            let session = arbitree_race::Session::start();
            let out = black_box(map_once());
            (out, session.finish().events.len())
        })
    });
    g.finish();
}

fn bench_run_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("race_overhead/run_cells");
    g.bench_function("no-session", |b| b.iter(|| black_box(run_cells(cells()))));
    #[cfg(feature = "race-audit")]
    g.bench_function("recorded", |b| {
        b.iter(|| {
            let session = arbitree_race::Session::start();
            let out = black_box(run_cells(cells()));
            (out, session.finish().events.len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_parallel_map, bench_run_cells
}
criterion_main!(benches);
