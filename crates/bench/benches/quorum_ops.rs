//! Criterion benches: quorum picking and enumeration throughput for every
//! §4 configuration — the operational counterpart of Figure 2 (how much
//! work a coordinator does per operation as `n` grows).

use arbitree_analysis::Configuration;
use arbitree_quorum::{AliveSet, ReplicaControl};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

/// Fast-but-meaningful defaults so the full suite finishes in minutes.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20)
        .configure_from_args()
}

fn bench_pick_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("pick_read_quorum");
    for config in Configuration::ALL {
        let mut seen = std::collections::HashSet::new();
        for n in [15usize, 63, 127] {
            let proto = config.build(n);
            if !seen.insert(proto.universe().len()) {
                continue; // nearest feasible size collided with a previous one
            }
            let alive = AliveSet::full(proto.universe().len());
            let mut rng = StdRng::seed_from_u64(1);
            group.bench_with_input(
                BenchmarkId::new(config.name(), proto.universe().len()),
                &proto,
                |b, proto| {
                    b.iter(|| black_box(proto.pick_read_quorum(alive, &mut rng)));
                },
            );
        }
    }
    group.finish();
}

fn bench_pick_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("pick_write_quorum");
    for config in Configuration::ALL {
        let proto = config.build(63);
        let alive = AliveSet::full(proto.universe().len());
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_with_input(
            BenchmarkId::new(config.name(), proto.universe().len()),
            &proto,
            |b, proto| {
                b.iter(|| black_box(proto.pick_write_quorum(alive, &mut rng)));
            },
        );
    }
    group.finish();
}

fn bench_pick_read_degraded(c: &mut Criterion) {
    // Picking under failures exercises the failure-handling paths (e.g. the
    // tree-quorum recursive descent).
    let mut group = c.benchmark_group("pick_read_quorum_degraded");
    for config in Configuration::ALL {
        let proto = config.build(63);
        let n = proto.universe().len();
        let mut alive = AliveSet::full(n);
        // Kill every fourth site.
        for i in (0..n).step_by(4) {
            alive.remove(arbitree_quorum::SiteId::new(i as u32));
        }
        let mut rng = StdRng::seed_from_u64(3);
        group.bench_with_input(BenchmarkId::new(config.name(), n), &proto, |b, proto| {
            b.iter(|| black_box(proto.pick_read_quorum(alive, &mut rng)));
        });
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_read_quorums");
    for config in [
        Configuration::Arbitrary,
        Configuration::Binary,
        Configuration::Hqc,
        Configuration::MostlyWrite,
    ] {
        let proto = config.build(15);
        group.bench_with_input(
            BenchmarkId::new(config.name(), proto.universe().len()),
            &proto,
            |b, proto| {
                b.iter(|| black_box(proto.read_quorums().count()));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets =
      bench_pick_read,
      bench_pick_write,
      bench_pick_read_degraded,
      bench_enumeration
}
criterion_main!(benches);
