//! Criterion benches for the audit-facing sim machinery: the three
//! fingerprint widths (64-bit narrow, 128-bit wide, canonical
//! sorted-storage) hashed over a mid-run state, and the cost of replaying
//! a recorded schedule through [`ReplayScheduler`] against the seeded
//! run that produced it. The checker's walk fingerprints every visited
//! state and the audit replays two schedules per claimed-independent
//! pair, so both costs multiply directly into exploration throughput.

use arbitree_core::ArbitraryProtocol;
use arbitree_sim::{
    EventKey, ReplayScheduler, Scheduler, SeededScheduler, SimConfig, SimDuration, Simulation,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Fast-but-meaningful defaults so the full suite finishes in minutes.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30)
        .configure_from_args()
}

fn config() -> SimConfig {
    SimConfig {
        seed: 7,
        clients: 4,
        objects: 4,
        duration: SimDuration::from_millis(50),
        ..SimConfig::default()
    }
}

fn fresh_sim() -> Simulation {
    Simulation::new(
        config(),
        ArbitraryProtocol::parse("1-3-5").expect("valid spec"),
    )
}

/// Delegates to the seeded policy but stops after `left` steps — the
/// cheapest way to park a simulation in a representative mid-run state
/// (staged writes, in-flight quorum rounds, pending timers).
struct Capped {
    inner: SeededScheduler,
    left: usize,
}

impl Scheduler for Capped {
    fn select(&mut self, sim: &Simulation) -> Option<EventKey> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        self.inner.select(sim)
    }
}

/// Records the seeded choice sequence while executing it, so the same
/// run can be replayed key-for-key.
struct Recording {
    inner: Capped,
    keys: Vec<EventKey>,
}

impl Scheduler for Recording {
    fn select(&mut self, sim: &Simulation) -> Option<EventKey> {
        let key = self.inner.select(sim)?;
        self.keys.push(key);
        Some(key)
    }
}

const STEPS: usize = 500;

fn mid_run_sim() -> Simulation {
    let mut sim = fresh_sim();
    sim.run_with(&mut Capped {
        inner: SeededScheduler,
        left: STEPS,
    });
    sim
}

fn bench_fingerprint_widths(c: &mut Criterion) {
    let sim = mid_run_sim();
    let mut group = c.benchmark_group("fingerprint");
    group.bench_function("narrow_64", |b| b.iter(|| black_box(sim.fingerprint())));
    group.bench_function("wide_128", |b| b.iter(|| black_box(sim.fingerprint_wide())));
    group.bench_function("canonical_128", |b| {
        b.iter(|| black_box(sim.fingerprint_canonical()))
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut recording = Recording {
        inner: Capped {
            inner: SeededScheduler,
            left: STEPS,
        },
        keys: Vec::with_capacity(STEPS),
    };
    fresh_sim().run_with(&mut recording);
    let schedule = recording.keys;
    assert_eq!(schedule.len(), STEPS, "seeded run must supply every step");

    let mut group = c.benchmark_group("replay");
    // Baseline: the same number of steps under the seeded policy,
    // including simulation construction (replay always pays that).
    group.bench_function("seeded_500_steps", |b| {
        b.iter(|| {
            let mut sim = fresh_sim();
            sim.run_with(&mut Capped {
                inner: SeededScheduler,
                left: STEPS,
            });
            black_box(sim.fingerprint())
        })
    });
    group.bench_function("replay_500_steps", |b| {
        b.iter(|| {
            let mut sim = fresh_sim();
            let mut replay = ReplayScheduler::new(&schedule);
            sim.run_with(&mut replay);
            assert!(replay.missing().is_none(), "recorded schedule must replay");
            black_box(sim.fingerprint())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_fingerprint_widths, bench_replay
}
criterion_main!(benches);
