//! Criterion benches: end-to-end simulator throughput — events processed
//! for a fixed workload under each configuration, failure-free and with
//! churn — plus the parallel experiment runner against its serial
//! equivalent, and the static experiment harness.

use arbitree_analysis::Configuration;
use arbitree_core::ArbitraryProtocol;
use arbitree_sim::{
    empirical_availability, run_cells, run_simulation, ExperimentCell, FailureSchedule, SimConfig,
    SimDuration,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Fast-but-meaningful defaults so the full suite finishes in minutes.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20)
        .configure_from_args()
}

fn config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        clients: 4,
        objects: 4,
        duration: SimDuration::from_millis(50),
        ..SimConfig::default()
    }
}

/// The failure-free sweep as experiment cells (one per tree shape).
fn failure_free_cells(seed: u64) -> Vec<ExperimentCell> {
    ["1-3-5", "1-4-4-4-4", "1-16"]
        .into_iter()
        .map(|spec| {
            let proto = ArbitraryProtocol::parse(spec).expect("valid");
            ExperimentCell::new(spec, config(seed), proto)
        })
        .collect()
}

fn bench_failure_free_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_failure_free");
    group.sample_size(20);
    for spec in ["1-3-5", "1-4-4-4-4", "1-16"] {
        group.bench_with_input(BenchmarkId::from_parameter(spec), &spec, |b, spec| {
            b.iter(|| {
                let proto = ArbitraryProtocol::parse(spec).expect("valid");
                black_box(run_simulation(config(1), proto, &FailureSchedule::none()))
            });
        });
    }
    group.finish();
}

fn bench_parallel_runner(c: &mut Criterion) {
    // The same three-cell sweep run serially and through the worker-pool
    // runner — the numbers agree cell-for-cell; only wall-clock differs.
    let mut group = c.benchmark_group("experiment_runner");
    group.sample_size(10);
    group.bench_function("serial_3_cells", |b| {
        b.iter(|| {
            for cell in failure_free_cells(1) {
                let mut sim = arbitree_sim::Simulation::from_boxed(cell.config, cell.protocol);
                cell.failures.apply(&mut sim);
                black_box(sim.run());
            }
        });
    });
    group.bench_function("parallel_3_cells", |b| {
        b.iter(|| black_box(run_cells(failure_free_cells(1))));
    });
    group.finish();
}

fn bench_churn_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_with_churn");
    group.sample_size(20);
    for spec in ["1-3-5", "1-4-4-4-4"] {
        group.bench_with_input(BenchmarkId::from_parameter(spec), &spec, |b, spec| {
            b.iter(|| {
                let proto = ArbitraryProtocol::parse(spec).expect("valid");
                let n = proto.tree().replica_count();
                let schedule = FailureSchedule::random(
                    n,
                    SimDuration::from_millis(50),
                    SimDuration::from_millis(15),
                    SimDuration::from_millis(5),
                    7,
                );
                black_box(run_simulation(config(2), proto, &schedule))
            });
        });
    }
    group.finish();
}

fn bench_static_availability(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_availability_10k_trials");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for cfg in [
        Configuration::Arbitrary,
        Configuration::Binary,
        Configuration::Hqc,
    ] {
        let proto = cfg.build(63);
        group.bench_with_input(
            BenchmarkId::new(cfg.name(), proto.universe().len()),
            &proto,
            |b, proto| {
                b.iter(|| black_box(empirical_availability(proto.as_ref(), 0.75, 10_000, 1)));
            },
        );
    }
    group.finish();
}

fn bench_read_repair_overhead(c: &mut Criterion) {
    // Ablation: simulation cost with and without read-repair under churn.
    let mut group = c.benchmark_group("ablation_read_repair");
    group.sample_size(20);
    for repair in [false, true] {
        let label = if repair { "on" } else { "off" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &repair, |b, &repair| {
            b.iter(|| {
                let proto = ArbitraryProtocol::parse("1-3-5").expect("valid");
                let mut cfg = config(3);
                cfg.read_repair = repair;
                let schedule = FailureSchedule::random(
                    8,
                    SimDuration::from_millis(50),
                    SimDuration::from_millis(15),
                    SimDuration::from_millis(5),
                    9,
                );
                black_box(run_simulation(cfg, proto, &schedule))
            });
        });
    }
    group.finish();
}

fn bench_reconfiguration(c: &mut Criterion) {
    use arbitree_baselines::Rowa;
    use arbitree_sim::{SimTime, Simulation};
    let mut group = c.benchmark_group("reconfiguration");
    group.sample_size(20);
    group.bench_function("swap_1-9_to_1-2-3-4", |b| {
        b.iter(|| {
            let mut sim =
                Simulation::new(config(4), ArbitraryProtocol::parse("1-9").expect("valid"));
            sim.schedule_reconfigure(
                SimTime::from_millis(20),
                ArbitraryProtocol::parse("1-2-3-4").expect("valid"),
            );
            black_box(sim.run())
        });
    });
    group.bench_function("swap_arbitrary_to_rowa", |b| {
        b.iter(|| {
            let mut sim =
                Simulation::new(config(5), ArbitraryProtocol::parse("1-3-5").expect("valid"));
            sim.schedule_reconfigure(SimTime::from_millis(20), Rowa::new(8));
            black_box(sim.run())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets =
      bench_failure_free_run,
      bench_parallel_runner,
      bench_churn_run,
      bench_static_availability,
      bench_read_repair_overhead,
      bench_reconfiguration
}
criterion_main!(benches);
