//! Criterion benches for the analytic foundations: LP-solver scaling with
//! system size, exact availability enumeration, and closed-form metric
//! evaluation (the machinery behind Figures 2–4).

use arbitree_analysis::{figures, Configuration};
use arbitree_baselines::Majority;
use arbitree_core::{ArbitraryTree, TreeMetrics};
use arbitree_quorum::{exact_availability, optimal_load, ReplicaControl, SetSystem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Fast-but-meaningful defaults so the full suite finishes in minutes.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20)
        .configure_from_args()
}

fn bench_lp_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_optimal_load");
    for n in [5usize, 7, 9] {
        let m = Majority::new(n);
        let sys = SetSystem::new(m.universe(), m.read_quorums().collect()).expect("valid");
        group.bench_with_input(
            BenchmarkId::new("majority", format!("n{n}_m{}", sys.len())),
            &sys,
            |b, sys| {
                b.iter(|| black_box(optimal_load(sys)));
            },
        );
    }
    group.finish();
}

fn bench_exact_availability(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_availability");
    group.sample_size(10);
    for n in [9usize, 12, 15] {
        let m = Majority::new(n);
        let sys = SetSystem::new(m.universe(), m.read_quorums().collect()).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(n), &sys, |b, sys| {
            b.iter(|| black_box(exact_availability(sys, 0.8)));
        });
    }
    group.finish();
}

fn bench_closed_form_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_form_metrics");
    let tree = ArbitraryTree::from_spec(&arbitree_core::builder::balanced(400).expect("valid"))
        .expect("valid");
    group.bench_function("arbitrary_n400_full_metrics", |b| {
        b.iter(|| {
            let m = TreeMetrics::new(&tree);
            black_box((
                m.read_cost(),
                m.write_cost(),
                m.read_availability(0.8),
                m.write_availability(0.8),
                m.expected_read_load(0.8),
                m.expected_write_load(0.8),
            ))
        });
    });
    group.bench_function("figure4_series_n260", |b| {
        b.iter(|| black_box(figures::figure4(260, 0.7)));
    });
    group.finish();
}

fn bench_tree_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_construction");
    for n in [100usize, 400, 1600] {
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &n, |b, &n| {
            b.iter(|| {
                let spec = arbitree_core::builder::balanced(n).expect("valid");
                black_box(ArbitraryTree::from_spec(&spec).expect("valid"))
            });
        });
    }
    for cfg in [Configuration::Binary, Configuration::Hqc] {
        group.bench_with_input(BenchmarkId::new(cfg.name(), 243), &cfg, |b, cfg| {
            b.iter(|| black_box(cfg.build(243).universe().len()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets =
      bench_lp_load,
      bench_exact_availability,
      bench_closed_form_metrics,
      bench_tree_construction
}
criterion_main!(benches);
