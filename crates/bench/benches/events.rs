//! Criterion benches for the event-engine hot path (requires
//! `--features reference-queue`): the hold model from the `events` bin,
//! calendar vs. the pre-swap `BTreeQueue` baseline, across the pending-set
//! sizes the swap targets. `cargo bench -p arbitree-bench --features
//! reference-queue --bench events`.

use arbitree_bench::events_driver::hold_model;
use arbitree_sim::{BTreeQueue, EventQueue};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Same knobs as the `events` bin's queue tier, shrunk to criterion scale.
const HORIZON_MICROS: u64 = 4_096;
const STEPS: u64 = 50_000;

fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20)
        .configure_from_args()
}

fn bench_hold_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold");
    for pending in [7usize, 31, 127, 1023] {
        group.bench_with_input(
            BenchmarkId::new("calendar", pending),
            &pending,
            |b, &pending| {
                b.iter(|| {
                    black_box(hold_model::<EventQueue>(
                        0xE7E2,
                        pending,
                        STEPS,
                        HORIZON_MICROS,
                        500,
                    ))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("btree", pending),
            &pending,
            |b, &pending| {
                b.iter(|| {
                    black_box(hold_model::<BTreeQueue>(
                        0xE7E2,
                        pending,
                        STEPS,
                        HORIZON_MICROS,
                        500,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_hold_model
}
criterion_main!(benches);
