//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`, range and collection strategies, `any`,
//! and the `prop_assert*`/`prop_assume!` macros. Cases are generated from
//! a fixed seed so runs are deterministic; there is no shrinking — a
//! failing case panics with the assertion message.

#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (does not count as a run).
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Value-generation strategies.
pub mod strategy {
    use super::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generates a value, builds a second strategy from it, and samples
        /// that.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(S0 / 0);
    impl_tuple_strategy!(S0 / 0, S1 / 1);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The `any::<T>()` strategy for this type.
    type Strategy: strategy::Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind [`any`] for primitives: the full value range.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullRange<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl strategy::Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen::<$t>(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(core::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_via_standard!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, f32, f64);

/// The canonical strategy for `T` (full range for primitives).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// A length distribution for collection strategies: an exact size, a
    /// half-open range, or an inclusive range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(!r.is_empty(), "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(!r.is_empty(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

#[doc(hidden)]
pub mod __internal {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Fixed base seed: property runs are deterministic across invocations.
    pub const BASE_SEED: u64 = 0xA11C_E5EE_D000_0001;
}

/// Defines property tests. Each accepted case draws fresh values from the
/// argument strategies; rejected cases (`prop_assume!`) are retried.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };
    (
        @impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::__internal::StdRng as $crate::__internal::SeedableRng>::
                    seed_from_u64($crate::__internal::BASE_SEED ^ (stringify!($name).len() as u64));
                let mut accepted = 0u32;
                let mut rejected = 0u32;
                while accepted < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (move || {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < 100 * config.cases.max(64),
                                "proptest {}: too many rejected cases ({rejected})",
                                stringify!($name),
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name), accepted, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)+), a, b
        );
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (retried with fresh values) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_is_honoured(v in crate::collection::vec(0u32..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = (1usize..4).prop_map(|n| n * 2).prop_flat_map(|n| 0usize..n);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 6);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u32..1) {
                prop_assert!(x > 10, "x was {x}");
            }
        }
        inner();
    }
}
