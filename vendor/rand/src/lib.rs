//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits and a deterministic [`rngs::StdRng`].
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! strong for simulation purposes and fully reproducible from a `u64` seed.
//! Streams differ from upstream `rand`'s ChaCha-based `StdRng`, which is
//! fine: the workspace only relies on *determinism per seed*, never on a
//! particular stream.

#![warn(missing_docs)]

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output (the
/// stand-in for rand's `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (the stand-in for rand's
/// `SampleRange`). Implemented for `Range` and `RangeInclusive` over the
/// primitive integers and floats.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniformly maps a raw 64-bit draw into `[0, span]` (widening-multiply
/// method; bias is at most `span / 2^64`, negligible for simulation use).
fn bounded_inclusive<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let bound = span + 1;
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64) - 1;
                self.start.wrapping_add(bounded_inclusive(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(bounded_inclusive(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let x = <$t as StandardSample>::standard_sample(rng);
                self.start + x * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let x = <$t as StandardSample>::standard_sample(rng);
                lo + x * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience extension over [`RngCore`]: typed sampling.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for the provided RNGs).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 so that
    /// nearby seeds yield unrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Provided RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    ///
    /// Not the upstream ChaCha-based `StdRng`; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                let len = chunk.len();
                chunk.copy_from_slice(&word[..len]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the small RNG is the same generator here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
            let x = rng.gen_range(3u64..=7);
            assert!((3..=7).contains(&x));
            let f = rng.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&f));
        }
        assert_eq!(seen, [true; 5]);
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut dyn super::RngCore = &mut rng;
        let x = dynrng.next_u64();
        let y = dynrng.next_u64();
        assert_ne!(x, y);
    }
}
