//! Offline stand-in for the `bytes` crate: just [`Bytes`], an immutable,
//! reference-counted byte buffer with O(1) clone and O(1) subslicing — the
//! only type this workspace uses.
//!
//! A [`Bytes`] is a `(Arc<[u8]>, offset, len)` view: [`Bytes::slice`]
//! produces a narrower view of the *same* allocation, so a fan-out path can
//! carve per-destination values out of one arena buffer without copying.
//! All comparisons, ordering, and hashing are over the viewed *contents*,
//! never the backing allocation — two views of different buffers with equal
//! bytes are equal.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(bytes))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    fn from_arc(data: Arc<[u8]>) -> Self {
        let len = data.len();
        Bytes {
            data,
            offset: 0,
            len,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A narrower view of the same backing allocation — no copy, just an
    /// `Arc` clone plus offset arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds of {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Whether `self` and `other` are views of the same backing allocation
    /// (regardless of offsets). Diagnostic only — equality is by content.
    pub fn shares_buffer(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::from_arc(Arc::from(&[][..]))
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

// Content semantics: a view is its bytes, not its allocation. Hand-rolled
// because deriving would compare/hash the `Arc` pointer structure and the
// raw offsets, making equal contents in different buffers unequal.

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        let c = a.clone();
        assert_eq!(c, a);
    }

    #[test]
    fn from_static_and_debug() {
        let s = Bytes::from_static(b"v");
        assert_eq!(format!("{s:?}"), "b\"v\"");
    }

    #[test]
    fn slice_is_a_view_not_a_copy() {
        let arena = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = arena.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        assert!(mid.shares_buffer(&arena));
        // Sub-slicing a slice composes offsets.
        let inner = mid.slice(1..=2);
        assert_eq!(&inner[..], &[3, 4]);
        assert!(inner.shares_buffer(&arena));
        // Unbounded forms.
        assert_eq!(&mid.slice(..)[..], &mid[..]);
        assert_eq!(&mid.slice(2..)[..], &[4, 5]);
        assert_eq!(&mid.slice(..2)[..], &[2, 3]);
    }

    #[test]
    fn equality_hash_and_order_are_content_based() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let whole = Bytes::from(vec![9, 9, 5, 6, 9]);
        let view = whole.slice(2..4);
        let copy = Bytes::from(vec![5, 6]);
        assert_eq!(view, copy);
        assert!(!view.shares_buffer(&copy));
        let h = |b: &Bytes| {
            let mut s = DefaultHasher::new();
            b.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&view), h(&copy));
        assert!(view < Bytes::from(vec![5, 7]));
        assert!(Bytes::from(vec![4, 255]) < view);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(1..5);
    }
}
