//! Offline stand-in for the `bytes` crate: just [`Bytes`], an immutable,
//! reference-counted byte buffer with O(1) clone — the only type this
//! workspace uses.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        let c = a.clone();
        assert_eq!(c, a);
    }

    #[test]
    fn from_static_and_debug() {
        let s = Bytes::from_static(b"v");
        assert_eq!(format!("{s:?}"), "b\"v\"");
    }
}
