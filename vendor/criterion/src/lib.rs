//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock measurement loop: per sample, run the routine in a batch
//! sized to the warm-up estimate and report the median per-iteration time.
//! No statistical analysis, plots, or baseline comparison.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments: any free argument is a substring
    /// filter on benchmark names (`--bench`/`--test` harness flags are
    /// ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self = self.sample_size(n);
                    }
                }
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let cfg = self.clone();
        self.run_one(&cfg, &id.into().full_name(None), f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, cfg: &Criterion, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm up and estimate per-pass cost so each sample batches enough
        // iterations to be measurable.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut passes = 0u64;
        while warm_start.elapsed() < cfg.warm_up_time {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            passes += 1;
        }
        let per_pass = warm_start.elapsed() / passes.max(1) as u32;
        let budget = cfg.measurement_time / cfg.sample_size as u32;
        let iters_per_sample = if per_pass.is_zero() {
            1
        } else {
            (budget.as_nanos() / per_pass.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(cfg.sample_size);
        for _ in 0..cfg.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed / iters_per_sample as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let low = samples[0];
        let high = samples[samples.len() - 1];
        println!(
            "{name:<60} time: [{} {} {}]",
            format_duration(low),
            format_duration(median),
            format_duration(high)
        );
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A set of related benchmarks sharing a name prefix and overrides.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    fn effective_config(&self) -> Criterion {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        if let Some(d) = self.measurement_time {
            cfg.measurement_time = d;
        }
        cfg
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let cfg = self.effective_config();
        let name = id.into().full_name(Some(&self.name));
        self.criterion.run_one(&cfg, &name, f);
    }

    /// Runs a benchmark with an input value passed to the routine.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let cfg = self.effective_config();
        let name = id.full_name(Some(&self.name));
        self.criterion.run_one(&cfg, &name, |b| f(b, input));
    }

    /// Finishes the group (no-op; reporting happens per benchmark).
    pub fn finish(self) {}
}

/// Identifies a benchmark: a function name and an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is just a parameter (function name comes from the group).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self, group: Option<&str>) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if let Some(g) = group {
            parts.push(g);
        }
        if let Some(f) = &self.function {
            parts.push(f);
        }
        if let Some(p) = &self.parameter {
            parts.push(p);
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Timing handle passed to benchmark routines.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it in a batch and accumulating wall-clock
    /// time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Re-export: benches commonly use `criterion::black_box`.
pub use std::hint::black_box;

/// Groups benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_pipeline_runs() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(2);
        let mut group = c.benchmark_group("group");
        group.sample_size(2);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_with_input(BenchmarkId::from_parameter("p"), &1u64, |b, &n| {
            b.iter(|| n);
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn id_names() {
        assert_eq!(BenchmarkId::new("f", 7).full_name(Some("g")), "g/f/7");
        assert_eq!(BenchmarkId::from_parameter(7).full_name(Some("g")), "g/7");
        assert_eq!(BenchmarkId::from("solo").full_name(None), "solo");
    }
}
