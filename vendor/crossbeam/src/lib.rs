//! Offline stand-in for the `crossbeam` crate, covering the scoped-thread
//! API this workspace uses (`crossbeam::thread::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join`), implemented on top of [`std::thread::scope`].

#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Result of a (scoped) thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`]'s closure; spawn borrows through it.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (`Err` if it
        /// panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads. All spawned threads
    /// are joined when the closure returns; a panic in a spawned thread is
    /// reported as `Err` (matching crossbeam, unlike `std::thread::scope`
    /// which propagates).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        });
        assert!(r.unwrap());
    }
}
