/root/repo/target/release/deps/example_3_4-8066b86e12a1bad0.d: crates/bench/src/bin/example_3_4.rs

/root/repo/target/release/deps/example_3_4-8066b86e12a1bad0: crates/bench/src/bin/example_3_4.rs

crates/bench/src/bin/example_3_4.rs:
