/root/repo/target/release/deps/sim_load_sweep-d935d25c4cf566c3.d: crates/bench/src/bin/sim_load_sweep.rs

/root/repo/target/release/deps/sim_load_sweep-d935d25c4cf566c3: crates/bench/src/bin/sim_load_sweep.rs

crates/bench/src/bin/sim_load_sweep.rs:
