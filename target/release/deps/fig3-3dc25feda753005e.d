/root/repo/target/release/deps/fig3-3dc25feda753005e.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-3dc25feda753005e: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
