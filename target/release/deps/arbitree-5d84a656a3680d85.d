/root/repo/target/release/deps/arbitree-5d84a656a3680d85.d: src/lib.rs

/root/repo/target/release/deps/libarbitree-5d84a656a3680d85.rlib: src/lib.rs

/root/repo/target/release/deps/libarbitree-5d84a656a3680d85.rmeta: src/lib.rs

src/lib.rs:
