/root/repo/target/release/deps/table1-a99144775354e400.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-a99144775354e400: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
