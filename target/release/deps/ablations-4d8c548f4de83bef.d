/root/repo/target/release/deps/ablations-4d8c548f4de83bef.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-4d8c548f4de83bef: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
