/root/repo/target/release/deps/arbitree_quorum-c5db1aa804c2b69a.d: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/domination.rs crates/quorum/src/load.rs crates/quorum/src/lp.rs crates/quorum/src/quorum_set.rs crates/quorum/src/resilience.rs crates/quorum/src/site.rs crates/quorum/src/strategy.rs crates/quorum/src/system.rs crates/quorum/src/traits.rs

/root/repo/target/release/deps/libarbitree_quorum-c5db1aa804c2b69a.rlib: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/domination.rs crates/quorum/src/load.rs crates/quorum/src/lp.rs crates/quorum/src/quorum_set.rs crates/quorum/src/resilience.rs crates/quorum/src/site.rs crates/quorum/src/strategy.rs crates/quorum/src/system.rs crates/quorum/src/traits.rs

/root/repo/target/release/deps/libarbitree_quorum-c5db1aa804c2b69a.rmeta: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/domination.rs crates/quorum/src/load.rs crates/quorum/src/lp.rs crates/quorum/src/quorum_set.rs crates/quorum/src/resilience.rs crates/quorum/src/site.rs crates/quorum/src/strategy.rs crates/quorum/src/system.rs crates/quorum/src/traits.rs

crates/quorum/src/lib.rs:
crates/quorum/src/availability.rs:
crates/quorum/src/domination.rs:
crates/quorum/src/load.rs:
crates/quorum/src/lp.rs:
crates/quorum/src/quorum_set.rs:
crates/quorum/src/resilience.rs:
crates/quorum/src/site.rs:
crates/quorum/src/strategy.rs:
crates/quorum/src/system.rs:
crates/quorum/src/traits.rs:
