/root/repo/target/release/deps/arbitree_core-09f8f9a9ff178ca7.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/planner.rs crates/core/src/protocol.rs crates/core/src/quorums.rs crates/core/src/render.rs crates/core/src/spec.rs crates/core/src/timestamp.rs crates/core/src/tree.rs

/root/repo/target/release/deps/libarbitree_core-09f8f9a9ff178ca7.rlib: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/planner.rs crates/core/src/protocol.rs crates/core/src/quorums.rs crates/core/src/render.rs crates/core/src/spec.rs crates/core/src/timestamp.rs crates/core/src/tree.rs

/root/repo/target/release/deps/libarbitree_core-09f8f9a9ff178ca7.rmeta: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/planner.rs crates/core/src/protocol.rs crates/core/src/quorums.rs crates/core/src/render.rs crates/core/src/spec.rs crates/core/src/timestamp.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/planner.rs:
crates/core/src/protocol.rs:
crates/core/src/quorums.rs:
crates/core/src/render.rs:
crates/core/src/spec.rs:
crates/core/src/timestamp.rs:
crates/core/src/tree.rs:
