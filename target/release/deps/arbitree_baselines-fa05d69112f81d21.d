/root/repo/target/release/deps/arbitree_baselines-fa05d69112f81d21.d: crates/baselines/src/lib.rs crates/baselines/src/grid.rs crates/baselines/src/hqc.rs crates/baselines/src/maekawa.rs crates/baselines/src/majority.rs crates/baselines/src/rowa.rs crates/baselines/src/tree_quorum.rs crates/baselines/src/unmodified.rs crates/baselines/src/util.rs crates/baselines/src/voting.rs

/root/repo/target/release/deps/libarbitree_baselines-fa05d69112f81d21.rlib: crates/baselines/src/lib.rs crates/baselines/src/grid.rs crates/baselines/src/hqc.rs crates/baselines/src/maekawa.rs crates/baselines/src/majority.rs crates/baselines/src/rowa.rs crates/baselines/src/tree_quorum.rs crates/baselines/src/unmodified.rs crates/baselines/src/util.rs crates/baselines/src/voting.rs

/root/repo/target/release/deps/libarbitree_baselines-fa05d69112f81d21.rmeta: crates/baselines/src/lib.rs crates/baselines/src/grid.rs crates/baselines/src/hqc.rs crates/baselines/src/maekawa.rs crates/baselines/src/majority.rs crates/baselines/src/rowa.rs crates/baselines/src/tree_quorum.rs crates/baselines/src/unmodified.rs crates/baselines/src/util.rs crates/baselines/src/voting.rs

crates/baselines/src/lib.rs:
crates/baselines/src/grid.rs:
crates/baselines/src/hqc.rs:
crates/baselines/src/maekawa.rs:
crates/baselines/src/majority.rs:
crates/baselines/src/rowa.rs:
crates/baselines/src/tree_quorum.rs:
crates/baselines/src/unmodified.rs:
crates/baselines/src/util.rs:
crates/baselines/src/voting.rs:
