/root/repo/target/release/deps/arbitree_analysis-0633d001c1ea031b.d: crates/analysis/src/lib.rs crates/analysis/src/chart.rs crates/analysis/src/config.rs crates/analysis/src/crossover.rs crates/analysis/src/figures.rs crates/analysis/src/report.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs

/root/repo/target/release/deps/libarbitree_analysis-0633d001c1ea031b.rlib: crates/analysis/src/lib.rs crates/analysis/src/chart.rs crates/analysis/src/config.rs crates/analysis/src/crossover.rs crates/analysis/src/figures.rs crates/analysis/src/report.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs

/root/repo/target/release/deps/libarbitree_analysis-0633d001c1ea031b.rmeta: crates/analysis/src/lib.rs crates/analysis/src/chart.rs crates/analysis/src/config.rs crates/analysis/src/crossover.rs crates/analysis/src/figures.rs crates/analysis/src/report.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs

crates/analysis/src/lib.rs:
crates/analysis/src/chart.rs:
crates/analysis/src/config.rs:
crates/analysis/src/crossover.rs:
crates/analysis/src/figures.rs:
crates/analysis/src/report.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/svg.rs:
