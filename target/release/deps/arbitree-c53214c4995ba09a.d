/root/repo/target/release/deps/arbitree-c53214c4995ba09a.d: src/bin/arbitree.rs

/root/repo/target/release/deps/arbitree-c53214c4995ba09a: src/bin/arbitree.rs

src/bin/arbitree.rs:
