/root/repo/target/release/deps/sim_validate-2ba3e407d600c794.d: crates/bench/src/bin/sim_validate.rs

/root/repo/target/release/deps/sim_validate-2ba3e407d600c794: crates/bench/src/bin/sim_validate.rs

crates/bench/src/bin/sim_validate.rs:
