/root/repo/target/release/deps/arbitree_bench-35fb6cf60c91919d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libarbitree_bench-35fb6cf60c91919d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libarbitree_bench-35fb6cf60c91919d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
