/root/repo/target/release/deps/paper_report-a93005e974802e0b.d: crates/bench/src/bin/paper_report.rs

/root/repo/target/release/deps/paper_report-a93005e974802e0b: crates/bench/src/bin/paper_report.rs

crates/bench/src/bin/paper_report.rs:
