/root/repo/target/release/deps/chaos-2c9fea00e1456be9.d: crates/bench/src/bin/chaos.rs

/root/repo/target/release/deps/chaos-2c9fea00e1456be9: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
