/root/repo/target/release/examples/live_reconfiguration-a2bd2c2be763d1aa.d: examples/live_reconfiguration.rs

/root/repo/target/release/examples/live_reconfiguration-a2bd2c2be763d1aa: examples/live_reconfiguration.rs

examples/live_reconfiguration.rs:
