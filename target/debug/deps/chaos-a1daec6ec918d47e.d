/root/repo/target/debug/deps/chaos-a1daec6ec918d47e.d: crates/bench/src/bin/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-a1daec6ec918d47e.rmeta: crates/bench/src/bin/chaos.rs Cargo.toml

crates/bench/src/bin/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
