/root/repo/target/debug/deps/arbitree-a5fb219b234c259e.d: src/bin/arbitree.rs

/root/repo/target/debug/deps/libarbitree-a5fb219b234c259e.rmeta: src/bin/arbitree.rs

src/bin/arbitree.rs:
