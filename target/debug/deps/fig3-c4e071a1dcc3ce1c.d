/root/repo/target/debug/deps/fig3-c4e071a1dcc3ce1c.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-c4e071a1dcc3ce1c.rmeta: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
