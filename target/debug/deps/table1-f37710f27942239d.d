/root/repo/target/debug/deps/table1-f37710f27942239d.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f37710f27942239d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
