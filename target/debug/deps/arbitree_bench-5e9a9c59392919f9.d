/root/repo/target/debug/deps/arbitree_bench-5e9a9c59392919f9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libarbitree_bench-5e9a9c59392919f9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
