/root/repo/target/debug/deps/scripted-3d311c8aca6ce92e.d: crates/sim/tests/scripted.rs Cargo.toml

/root/repo/target/debug/deps/libscripted-3d311c8aca6ce92e.rmeta: crates/sim/tests/scripted.rs Cargo.toml

crates/sim/tests/scripted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
