/root/repo/target/debug/deps/fig4-d304dbec74bf0d84.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-d304dbec74bf0d84: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
