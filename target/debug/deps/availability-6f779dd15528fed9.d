/root/repo/target/debug/deps/availability-6f779dd15528fed9.d: crates/bench/src/bin/availability.rs

/root/repo/target/debug/deps/availability-6f779dd15528fed9: crates/bench/src/bin/availability.rs

crates/bench/src/bin/availability.rs:
