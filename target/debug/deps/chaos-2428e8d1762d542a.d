/root/repo/target/debug/deps/chaos-2428e8d1762d542a.d: crates/bench/src/bin/chaos.rs

/root/repo/target/debug/deps/chaos-2428e8d1762d542a: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
