/root/repo/target/debug/deps/foundations-8569ed60bdd00447.d: crates/bench/benches/foundations.rs

/root/repo/target/debug/deps/foundations-8569ed60bdd00447: crates/bench/benches/foundations.rs

crates/bench/benches/foundations.rs:
