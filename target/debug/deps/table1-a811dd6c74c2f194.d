/root/repo/target/debug/deps/table1-a811dd6c74c2f194.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-a811dd6c74c2f194.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
