/root/repo/target/debug/deps/arbitree-5a694d7d57e1dc3c.d: src/bin/arbitree.rs Cargo.toml

/root/repo/target/debug/deps/libarbitree-5a694d7d57e1dc3c.rmeta: src/bin/arbitree.rs Cargo.toml

src/bin/arbitree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
