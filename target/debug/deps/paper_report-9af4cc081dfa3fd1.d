/root/repo/target/debug/deps/paper_report-9af4cc081dfa3fd1.d: crates/bench/src/bin/paper_report.rs

/root/repo/target/debug/deps/paper_report-9af4cc081dfa3fd1: crates/bench/src/bin/paper_report.rs

crates/bench/src/bin/paper_report.rs:
