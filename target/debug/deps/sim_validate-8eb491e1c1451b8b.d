/root/repo/target/debug/deps/sim_validate-8eb491e1c1451b8b.d: crates/bench/src/bin/sim_validate.rs Cargo.toml

/root/repo/target/debug/deps/libsim_validate-8eb491e1c1451b8b.rmeta: crates/bench/src/bin/sim_validate.rs Cargo.toml

crates/bench/src/bin/sim_validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
