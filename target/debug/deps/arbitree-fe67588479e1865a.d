/root/repo/target/debug/deps/arbitree-fe67588479e1865a.d: src/bin/arbitree.rs

/root/repo/target/debug/deps/arbitree-fe67588479e1865a: src/bin/arbitree.rs

src/bin/arbitree.rs:
