/root/repo/target/debug/deps/layers-8458faa6918d58f8.d: crates/sim/tests/layers.rs

/root/repo/target/debug/deps/layers-8458faa6918d58f8: crates/sim/tests/layers.rs

crates/sim/tests/layers.rs:
