/root/repo/target/debug/deps/arbitree_core-04dcc9cf726e3ae8.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/planner.rs crates/core/src/protocol.rs crates/core/src/quorums.rs crates/core/src/render.rs crates/core/src/spec.rs crates/core/src/timestamp.rs crates/core/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libarbitree_core-04dcc9cf726e3ae8.rmeta: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/planner.rs crates/core/src/protocol.rs crates/core/src/quorums.rs crates/core/src/render.rs crates/core/src/spec.rs crates/core/src/timestamp.rs crates/core/src/tree.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/planner.rs:
crates/core/src/protocol.rs:
crates/core/src/quorums.rs:
crates/core/src/render.rs:
crates/core/src/spec.rs:
crates/core/src/timestamp.rs:
crates/core/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
