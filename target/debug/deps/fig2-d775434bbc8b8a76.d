/root/repo/target/debug/deps/fig2-d775434bbc8b8a76.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-d775434bbc8b8a76: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
