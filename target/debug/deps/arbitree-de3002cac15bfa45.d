/root/repo/target/debug/deps/arbitree-de3002cac15bfa45.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libarbitree-de3002cac15bfa45.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
