/root/repo/target/debug/deps/arbitree_analysis-12c373d9ee5a0ba9.d: crates/analysis/src/lib.rs crates/analysis/src/chart.rs crates/analysis/src/config.rs crates/analysis/src/crossover.rs crates/analysis/src/figures.rs crates/analysis/src/report.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs

/root/repo/target/debug/deps/libarbitree_analysis-12c373d9ee5a0ba9.rmeta: crates/analysis/src/lib.rs crates/analysis/src/chart.rs crates/analysis/src/config.rs crates/analysis/src/crossover.rs crates/analysis/src/figures.rs crates/analysis/src/report.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs

crates/analysis/src/lib.rs:
crates/analysis/src/chart.rs:
crates/analysis/src/config.rs:
crates/analysis/src/crossover.rs:
crates/analysis/src/figures.rs:
crates/analysis/src/report.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/svg.rs:
