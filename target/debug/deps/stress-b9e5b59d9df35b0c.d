/root/repo/target/debug/deps/stress-b9e5b59d9df35b0c.d: crates/sim/tests/stress.rs

/root/repo/target/debug/deps/stress-b9e5b59d9df35b0c: crates/sim/tests/stress.rs

crates/sim/tests/stress.rs:
