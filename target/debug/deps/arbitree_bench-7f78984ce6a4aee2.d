/root/repo/target/debug/deps/arbitree_bench-7f78984ce6a4aee2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libarbitree_bench-7f78984ce6a4aee2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libarbitree_bench-7f78984ce6a4aee2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
