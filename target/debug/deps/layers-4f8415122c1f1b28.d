/root/repo/target/debug/deps/layers-4f8415122c1f1b28.d: crates/sim/tests/layers.rs Cargo.toml

/root/repo/target/debug/deps/liblayers-4f8415122c1f1b28.rmeta: crates/sim/tests/layers.rs Cargo.toml

crates/sim/tests/layers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
