/root/repo/target/debug/deps/chaos-aa9dbc6a68fa0445.d: crates/bench/src/bin/chaos.rs

/root/repo/target/debug/deps/chaos-aa9dbc6a68fa0445: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
