/root/repo/target/debug/deps/arbitree_core-b68648d4f0418422.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/planner.rs crates/core/src/protocol.rs crates/core/src/quorums.rs crates/core/src/render.rs crates/core/src/spec.rs crates/core/src/timestamp.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/arbitree_core-b68648d4f0418422: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/planner.rs crates/core/src/protocol.rs crates/core/src/quorums.rs crates/core/src/render.rs crates/core/src/spec.rs crates/core/src/timestamp.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/planner.rs:
crates/core/src/protocol.rs:
crates/core/src/quorums.rs:
crates/core/src/render.rs:
crates/core/src/spec.rs:
crates/core/src/timestamp.rs:
crates/core/src/tree.rs:
