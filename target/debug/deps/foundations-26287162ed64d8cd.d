/root/repo/target/debug/deps/foundations-26287162ed64d8cd.d: crates/bench/benches/foundations.rs Cargo.toml

/root/repo/target/debug/deps/libfoundations-26287162ed64d8cd.rmeta: crates/bench/benches/foundations.rs Cargo.toml

crates/bench/benches/foundations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
