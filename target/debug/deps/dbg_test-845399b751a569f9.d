/root/repo/target/debug/deps/dbg_test-845399b751a569f9.d: crates/sim/tests/dbg_test.rs

/root/repo/target/debug/deps/dbg_test-845399b751a569f9: crates/sim/tests/dbg_test.rs

crates/sim/tests/dbg_test.rs:
