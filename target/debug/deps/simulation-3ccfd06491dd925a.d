/root/repo/target/debug/deps/simulation-3ccfd06491dd925a.d: crates/bench/benches/simulation.rs

/root/repo/target/debug/deps/simulation-3ccfd06491dd925a: crates/bench/benches/simulation.rs

crates/bench/benches/simulation.rs:
