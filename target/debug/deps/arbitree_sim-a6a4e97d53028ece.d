/root/repo/target/debug/deps/arbitree_sim-a6a4e97d53028ece.d: crates/sim/src/lib.rs crates/sim/src/checker.rs crates/sim/src/config.rs crates/sim/src/coordinator.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/failure.rs crates/sim/src/harness.rs crates/sim/src/history.rs crates/sim/src/locks.rs crates/sim/src/message.rs crates/sim/src/metrics.rs crates/sim/src/nemesis.rs crates/sim/src/network.rs crates/sim/src/sim.rs crates/sim/src/site.rs crates/sim/src/storage.rs crates/sim/src/time.rs crates/sim/src/txn.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/arbitree_sim-a6a4e97d53028ece: crates/sim/src/lib.rs crates/sim/src/checker.rs crates/sim/src/config.rs crates/sim/src/coordinator.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/failure.rs crates/sim/src/harness.rs crates/sim/src/history.rs crates/sim/src/locks.rs crates/sim/src/message.rs crates/sim/src/metrics.rs crates/sim/src/nemesis.rs crates/sim/src/network.rs crates/sim/src/sim.rs crates/sim/src/site.rs crates/sim/src/storage.rs crates/sim/src/time.rs crates/sim/src/txn.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/checker.rs:
crates/sim/src/config.rs:
crates/sim/src/coordinator.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/failure.rs:
crates/sim/src/harness.rs:
crates/sim/src/history.rs:
crates/sim/src/locks.rs:
crates/sim/src/message.rs:
crates/sim/src/metrics.rs:
crates/sim/src/nemesis.rs:
crates/sim/src/network.rs:
crates/sim/src/sim.rs:
crates/sim/src/site.rs:
crates/sim/src/storage.rs:
crates/sim/src/time.rs:
crates/sim/src/txn.rs:
crates/sim/src/workload.rs:
