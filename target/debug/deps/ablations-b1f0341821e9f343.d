/root/repo/target/debug/deps/ablations-b1f0341821e9f343.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-b1f0341821e9f343: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
