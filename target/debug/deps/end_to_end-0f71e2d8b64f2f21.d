/root/repo/target/debug/deps/end_to_end-0f71e2d8b64f2f21.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0f71e2d8b64f2f21: tests/end_to_end.rs

tests/end_to_end.rs:
