/root/repo/target/debug/deps/example_3_4-7d60acd052e8e136.d: crates/bench/src/bin/example_3_4.rs

/root/repo/target/debug/deps/example_3_4-7d60acd052e8e136: crates/bench/src/bin/example_3_4.rs

crates/bench/src/bin/example_3_4.rs:
