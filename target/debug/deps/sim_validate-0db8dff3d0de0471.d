/root/repo/target/debug/deps/sim_validate-0db8dff3d0de0471.d: crates/bench/src/bin/sim_validate.rs

/root/repo/target/debug/deps/sim_validate-0db8dff3d0de0471: crates/bench/src/bin/sim_validate.rs

crates/bench/src/bin/sim_validate.rs:
