/root/repo/target/debug/deps/table1-faedc8a252aae3d9.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-faedc8a252aae3d9: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
