/root/repo/target/debug/deps/arbitree_bench-0d3188a165219c7e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libarbitree_bench-0d3188a165219c7e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
