/root/repo/target/debug/deps/reconfigure-f373fd63ebd58920.d: crates/sim/tests/reconfigure.rs Cargo.toml

/root/repo/target/debug/deps/libreconfigure-f373fd63ebd58920.rmeta: crates/sim/tests/reconfigure.rs Cargo.toml

crates/sim/tests/reconfigure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
