/root/repo/target/debug/deps/arbitree_baselines-f82db448e380f32f.d: crates/baselines/src/lib.rs crates/baselines/src/grid.rs crates/baselines/src/hqc.rs crates/baselines/src/maekawa.rs crates/baselines/src/majority.rs crates/baselines/src/rowa.rs crates/baselines/src/tree_quorum.rs crates/baselines/src/unmodified.rs crates/baselines/src/util.rs crates/baselines/src/voting.rs

/root/repo/target/debug/deps/libarbitree_baselines-f82db448e380f32f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/grid.rs crates/baselines/src/hqc.rs crates/baselines/src/maekawa.rs crates/baselines/src/majority.rs crates/baselines/src/rowa.rs crates/baselines/src/tree_quorum.rs crates/baselines/src/unmodified.rs crates/baselines/src/util.rs crates/baselines/src/voting.rs

crates/baselines/src/lib.rs:
crates/baselines/src/grid.rs:
crates/baselines/src/hqc.rs:
crates/baselines/src/maekawa.rs:
crates/baselines/src/majority.rs:
crates/baselines/src/rowa.rs:
crates/baselines/src/tree_quorum.rs:
crates/baselines/src/unmodified.rs:
crates/baselines/src/util.rs:
crates/baselines/src/voting.rs:
