/root/repo/target/debug/deps/simulation-c090397bcd2c3f1f.d: crates/bench/benches/simulation.rs

/root/repo/target/debug/deps/simulation-c090397bcd2c3f1f: crates/bench/benches/simulation.rs

crates/bench/benches/simulation.rs:
