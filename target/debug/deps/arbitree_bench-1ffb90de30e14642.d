/root/repo/target/debug/deps/arbitree_bench-1ffb90de30e14642.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/arbitree_bench-1ffb90de30e14642: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
