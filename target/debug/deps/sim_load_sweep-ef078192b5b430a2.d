/root/repo/target/debug/deps/sim_load_sweep-ef078192b5b430a2.d: crates/bench/src/bin/sim_load_sweep.rs

/root/repo/target/debug/deps/libsim_load_sweep-ef078192b5b430a2.rmeta: crates/bench/src/bin/sim_load_sweep.rs

crates/bench/src/bin/sim_load_sweep.rs:
