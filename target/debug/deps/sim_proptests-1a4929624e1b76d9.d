/root/repo/target/debug/deps/sim_proptests-1a4929624e1b76d9.d: crates/sim/tests/sim_proptests.rs

/root/repo/target/debug/deps/sim_proptests-1a4929624e1b76d9: crates/sim/tests/sim_proptests.rs

crates/sim/tests/sim_proptests.rs:
