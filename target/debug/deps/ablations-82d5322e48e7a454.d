/root/repo/target/debug/deps/ablations-82d5322e48e7a454.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-82d5322e48e7a454.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
