/root/repo/target/debug/deps/fig3-dd5065ce0126e7b4.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-dd5065ce0126e7b4: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
