/root/repo/target/debug/deps/arbitree-3b5836a038bbeb08.d: src/bin/arbitree.rs

/root/repo/target/debug/deps/arbitree-3b5836a038bbeb08: src/bin/arbitree.rs

src/bin/arbitree.rs:
