/root/repo/target/debug/deps/arbitree_core-d1c3b72106f8f3f1.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/planner.rs crates/core/src/protocol.rs crates/core/src/quorums.rs crates/core/src/render.rs crates/core/src/spec.rs crates/core/src/timestamp.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/libarbitree_core-d1c3b72106f8f3f1.rmeta: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/planner.rs crates/core/src/protocol.rs crates/core/src/quorums.rs crates/core/src/render.rs crates/core/src/spec.rs crates/core/src/timestamp.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/planner.rs:
crates/core/src/protocol.rs:
crates/core/src/quorums.rs:
crates/core/src/render.rs:
crates/core/src/spec.rs:
crates/core/src/timestamp.rs:
crates/core/src/tree.rs:
