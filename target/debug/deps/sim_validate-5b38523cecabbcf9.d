/root/repo/target/debug/deps/sim_validate-5b38523cecabbcf9.d: crates/bench/src/bin/sim_validate.rs Cargo.toml

/root/repo/target/debug/deps/libsim_validate-5b38523cecabbcf9.rmeta: crates/bench/src/bin/sim_validate.rs Cargo.toml

crates/bench/src/bin/sim_validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
