/root/repo/target/debug/deps/cli-2949947991ba39d0.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-2949947991ba39d0.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_arbitree=placeholder:arbitree
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
