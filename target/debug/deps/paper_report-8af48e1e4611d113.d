/root/repo/target/debug/deps/paper_report-8af48e1e4611d113.d: crates/bench/src/bin/paper_report.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_report-8af48e1e4611d113.rmeta: crates/bench/src/bin/paper_report.rs Cargo.toml

crates/bench/src/bin/paper_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
