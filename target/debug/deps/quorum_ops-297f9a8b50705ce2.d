/root/repo/target/debug/deps/quorum_ops-297f9a8b50705ce2.d: crates/bench/benches/quorum_ops.rs Cargo.toml

/root/repo/target/debug/deps/libquorum_ops-297f9a8b50705ce2.rmeta: crates/bench/benches/quorum_ops.rs Cargo.toml

crates/bench/benches/quorum_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
