/root/repo/target/debug/deps/arbitree-d9ca1c9b0e72b586.d: src/lib.rs

/root/repo/target/debug/deps/libarbitree-d9ca1c9b0e72b586.rmeta: src/lib.rs

src/lib.rs:
