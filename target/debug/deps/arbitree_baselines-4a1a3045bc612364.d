/root/repo/target/debug/deps/arbitree_baselines-4a1a3045bc612364.d: crates/baselines/src/lib.rs crates/baselines/src/grid.rs crates/baselines/src/hqc.rs crates/baselines/src/maekawa.rs crates/baselines/src/majority.rs crates/baselines/src/rowa.rs crates/baselines/src/tree_quorum.rs crates/baselines/src/unmodified.rs crates/baselines/src/util.rs crates/baselines/src/voting.rs Cargo.toml

/root/repo/target/debug/deps/libarbitree_baselines-4a1a3045bc612364.rmeta: crates/baselines/src/lib.rs crates/baselines/src/grid.rs crates/baselines/src/hqc.rs crates/baselines/src/maekawa.rs crates/baselines/src/majority.rs crates/baselines/src/rowa.rs crates/baselines/src/tree_quorum.rs crates/baselines/src/unmodified.rs crates/baselines/src/util.rs crates/baselines/src/voting.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/grid.rs:
crates/baselines/src/hqc.rs:
crates/baselines/src/maekawa.rs:
crates/baselines/src/majority.rs:
crates/baselines/src/rowa.rs:
crates/baselines/src/tree_quorum.rs:
crates/baselines/src/unmodified.rs:
crates/baselines/src/util.rs:
crates/baselines/src/voting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
