/root/repo/target/debug/deps/availability-5f826ef5eba3a61d.d: crates/bench/src/bin/availability.rs Cargo.toml

/root/repo/target/debug/deps/libavailability-5f826ef5eba3a61d.rmeta: crates/bench/src/bin/availability.rs Cargo.toml

crates/bench/src/bin/availability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
