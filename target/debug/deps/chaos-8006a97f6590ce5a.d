/root/repo/target/debug/deps/chaos-8006a97f6590ce5a.d: crates/sim/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-8006a97f6590ce5a.rmeta: crates/sim/tests/chaos.rs Cargo.toml

crates/sim/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
