/root/repo/target/debug/deps/fig4-8d2a054b59b87700.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-8d2a054b59b87700.rmeta: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
