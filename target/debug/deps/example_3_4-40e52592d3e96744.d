/root/repo/target/debug/deps/example_3_4-40e52592d3e96744.d: crates/bench/src/bin/example_3_4.rs Cargo.toml

/root/repo/target/debug/deps/libexample_3_4-40e52592d3e96744.rmeta: crates/bench/src/bin/example_3_4.rs Cargo.toml

crates/bench/src/bin/example_3_4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
