/root/repo/target/debug/deps/proptests-65bbdae43a9a6e0c.d: crates/quorum/tests/proptests.rs

/root/repo/target/debug/deps/proptests-65bbdae43a9a6e0c: crates/quorum/tests/proptests.rs

crates/quorum/tests/proptests.rs:
