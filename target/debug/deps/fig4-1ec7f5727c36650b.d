/root/repo/target/debug/deps/fig4-1ec7f5727c36650b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-1ec7f5727c36650b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
