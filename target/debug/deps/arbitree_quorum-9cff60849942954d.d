/root/repo/target/debug/deps/arbitree_quorum-9cff60849942954d.d: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/domination.rs crates/quorum/src/load.rs crates/quorum/src/lp.rs crates/quorum/src/quorum_set.rs crates/quorum/src/resilience.rs crates/quorum/src/site.rs crates/quorum/src/strategy.rs crates/quorum/src/system.rs crates/quorum/src/traits.rs Cargo.toml

/root/repo/target/debug/deps/libarbitree_quorum-9cff60849942954d.rmeta: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/domination.rs crates/quorum/src/load.rs crates/quorum/src/lp.rs crates/quorum/src/quorum_set.rs crates/quorum/src/resilience.rs crates/quorum/src/site.rs crates/quorum/src/strategy.rs crates/quorum/src/system.rs crates/quorum/src/traits.rs Cargo.toml

crates/quorum/src/lib.rs:
crates/quorum/src/availability.rs:
crates/quorum/src/domination.rs:
crates/quorum/src/load.rs:
crates/quorum/src/lp.rs:
crates/quorum/src/quorum_set.rs:
crates/quorum/src/resilience.rs:
crates/quorum/src/site.rs:
crates/quorum/src/strategy.rs:
crates/quorum/src/system.rs:
crates/quorum/src/traits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
