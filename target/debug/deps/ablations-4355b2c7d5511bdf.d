/root/repo/target/debug/deps/ablations-4355b2c7d5511bdf.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-4355b2c7d5511bdf: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
