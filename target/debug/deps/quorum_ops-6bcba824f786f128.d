/root/repo/target/debug/deps/quorum_ops-6bcba824f786f128.d: crates/bench/benches/quorum_ops.rs

/root/repo/target/debug/deps/quorum_ops-6bcba824f786f128: crates/bench/benches/quorum_ops.rs

crates/bench/benches/quorum_ops.rs:
