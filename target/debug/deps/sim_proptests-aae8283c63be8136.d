/root/repo/target/debug/deps/sim_proptests-aae8283c63be8136.d: crates/sim/tests/sim_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libsim_proptests-aae8283c63be8136.rmeta: crates/sim/tests/sim_proptests.rs Cargo.toml

crates/sim/tests/sim_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
