/root/repo/target/debug/deps/example_3_4-6bc239004cc12ccc.d: crates/bench/src/bin/example_3_4.rs

/root/repo/target/debug/deps/libexample_3_4-6bc239004cc12ccc.rmeta: crates/bench/src/bin/example_3_4.rs

crates/bench/src/bin/example_3_4.rs:
