/root/repo/target/debug/deps/fig2-3dbfa7a31ab597c4.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-3dbfa7a31ab597c4: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
