/root/repo/target/debug/deps/cross_crate-ad9d2a18e291493b.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-ad9d2a18e291493b: tests/cross_crate.rs

tests/cross_crate.rs:
