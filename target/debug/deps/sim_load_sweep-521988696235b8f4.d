/root/repo/target/debug/deps/sim_load_sweep-521988696235b8f4.d: crates/bench/src/bin/sim_load_sweep.rs

/root/repo/target/debug/deps/sim_load_sweep-521988696235b8f4: crates/bench/src/bin/sim_load_sweep.rs

crates/bench/src/bin/sim_load_sweep.rs:
