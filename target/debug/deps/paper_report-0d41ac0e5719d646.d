/root/repo/target/debug/deps/paper_report-0d41ac0e5719d646.d: crates/bench/src/bin/paper_report.rs

/root/repo/target/debug/deps/libpaper_report-0d41ac0e5719d646.rmeta: crates/bench/src/bin/paper_report.rs

crates/bench/src/bin/paper_report.rs:
