/root/repo/target/debug/deps/arbitree-f83dbf1755e9ec6a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libarbitree-f83dbf1755e9ec6a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
