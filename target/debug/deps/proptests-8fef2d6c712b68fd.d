/root/repo/target/debug/deps/proptests-8fef2d6c712b68fd.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8fef2d6c712b68fd: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
