/root/repo/target/debug/deps/arbitree-6a4e9cf36ed5bcd6.d: src/lib.rs

/root/repo/target/debug/deps/libarbitree-6a4e9cf36ed5bcd6.rlib: src/lib.rs

/root/repo/target/debug/deps/libarbitree-6a4e9cf36ed5bcd6.rmeta: src/lib.rs

src/lib.rs:
