/root/repo/target/debug/deps/paper_example-7c420d8ff26ebb4f.d: tests/paper_example.rs

/root/repo/target/debug/deps/paper_example-7c420d8ff26ebb4f: tests/paper_example.rs

tests/paper_example.rs:
