/root/repo/target/debug/deps/scripted-2086215570cbbb65.d: crates/sim/tests/scripted.rs

/root/repo/target/debug/deps/scripted-2086215570cbbb65: crates/sim/tests/scripted.rs

crates/sim/tests/scripted.rs:
