/root/repo/target/debug/deps/arbitree_analysis-88077235d503c201.d: crates/analysis/src/lib.rs crates/analysis/src/chart.rs crates/analysis/src/config.rs crates/analysis/src/crossover.rs crates/analysis/src/figures.rs crates/analysis/src/report.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libarbitree_analysis-88077235d503c201.rmeta: crates/analysis/src/lib.rs crates/analysis/src/chart.rs crates/analysis/src/config.rs crates/analysis/src/crossover.rs crates/analysis/src/figures.rs crates/analysis/src/report.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/chart.rs:
crates/analysis/src/config.rs:
crates/analysis/src/crossover.rs:
crates/analysis/src/figures.rs:
crates/analysis/src/report.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
