/root/repo/target/debug/deps/sim_validate-89dd84f7d11c79b3.d: crates/bench/src/bin/sim_validate.rs

/root/repo/target/debug/deps/libsim_validate-89dd84f7d11c79b3.rmeta: crates/bench/src/bin/sim_validate.rs

crates/bench/src/bin/sim_validate.rs:
