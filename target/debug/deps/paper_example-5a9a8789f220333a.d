/root/repo/target/debug/deps/paper_example-5a9a8789f220333a.d: tests/paper_example.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_example-5a9a8789f220333a.rmeta: tests/paper_example.rs Cargo.toml

tests/paper_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
