/root/repo/target/debug/deps/availability-b3c82e0b74bd5550.d: crates/bench/src/bin/availability.rs

/root/repo/target/debug/deps/availability-b3c82e0b74bd5550: crates/bench/src/bin/availability.rs

crates/bench/src/bin/availability.rs:
