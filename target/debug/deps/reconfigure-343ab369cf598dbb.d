/root/repo/target/debug/deps/reconfigure-343ab369cf598dbb.d: crates/sim/tests/reconfigure.rs

/root/repo/target/debug/deps/reconfigure-343ab369cf598dbb: crates/sim/tests/reconfigure.rs

crates/sim/tests/reconfigure.rs:
