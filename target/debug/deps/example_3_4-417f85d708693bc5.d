/root/repo/target/debug/deps/example_3_4-417f85d708693bc5.d: crates/bench/src/bin/example_3_4.rs

/root/repo/target/debug/deps/example_3_4-417f85d708693bc5: crates/bench/src/bin/example_3_4.rs

crates/bench/src/bin/example_3_4.rs:
