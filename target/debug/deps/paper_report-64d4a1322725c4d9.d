/root/repo/target/debug/deps/paper_report-64d4a1322725c4d9.d: crates/bench/src/bin/paper_report.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_report-64d4a1322725c4d9.rmeta: crates/bench/src/bin/paper_report.rs Cargo.toml

crates/bench/src/bin/paper_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
