/root/repo/target/debug/deps/availability-5b7f045f1492ecd2.d: crates/bench/src/bin/availability.rs

/root/repo/target/debug/deps/libavailability-5b7f045f1492ecd2.rmeta: crates/bench/src/bin/availability.rs

crates/bench/src/bin/availability.rs:
