/root/repo/target/debug/deps/quorum_ops-94c3f31f7ae07761.d: crates/bench/benches/quorum_ops.rs

/root/repo/target/debug/deps/quorum_ops-94c3f31f7ae07761: crates/bench/benches/quorum_ops.rs

crates/bench/benches/quorum_ops.rs:
