/root/repo/target/debug/deps/arbitree-921e564224ee3889.d: src/lib.rs

/root/repo/target/debug/deps/arbitree-921e564224ee3889: src/lib.rs

src/lib.rs:
