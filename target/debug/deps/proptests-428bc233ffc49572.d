/root/repo/target/debug/deps/proptests-428bc233ffc49572.d: crates/quorum/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-428bc233ffc49572.rmeta: crates/quorum/tests/proptests.rs Cargo.toml

crates/quorum/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
