/root/repo/target/debug/deps/arbitree_quorum-dedc9087f2cf8e79.d: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/domination.rs crates/quorum/src/load.rs crates/quorum/src/lp.rs crates/quorum/src/quorum_set.rs crates/quorum/src/resilience.rs crates/quorum/src/site.rs crates/quorum/src/strategy.rs crates/quorum/src/system.rs crates/quorum/src/traits.rs

/root/repo/target/debug/deps/libarbitree_quorum-dedc9087f2cf8e79.rmeta: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/domination.rs crates/quorum/src/load.rs crates/quorum/src/lp.rs crates/quorum/src/quorum_set.rs crates/quorum/src/resilience.rs crates/quorum/src/site.rs crates/quorum/src/strategy.rs crates/quorum/src/system.rs crates/quorum/src/traits.rs

crates/quorum/src/lib.rs:
crates/quorum/src/availability.rs:
crates/quorum/src/domination.rs:
crates/quorum/src/load.rs:
crates/quorum/src/lp.rs:
crates/quorum/src/quorum_set.rs:
crates/quorum/src/resilience.rs:
crates/quorum/src/site.rs:
crates/quorum/src/strategy.rs:
crates/quorum/src/system.rs:
crates/quorum/src/traits.rs:
