/root/repo/target/debug/deps/availability-0fa6e9f3c83256cf.d: crates/bench/src/bin/availability.rs Cargo.toml

/root/repo/target/debug/deps/libavailability-0fa6e9f3c83256cf.rmeta: crates/bench/src/bin/availability.rs Cargo.toml

crates/bench/src/bin/availability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
