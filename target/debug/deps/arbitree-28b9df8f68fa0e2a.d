/root/repo/target/debug/deps/arbitree-28b9df8f68fa0e2a.d: src/bin/arbitree.rs Cargo.toml

/root/repo/target/debug/deps/libarbitree-28b9df8f68fa0e2a.rmeta: src/bin/arbitree.rs Cargo.toml

src/bin/arbitree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
