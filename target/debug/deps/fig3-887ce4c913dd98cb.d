/root/repo/target/debug/deps/fig3-887ce4c913dd98cb.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-887ce4c913dd98cb: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
