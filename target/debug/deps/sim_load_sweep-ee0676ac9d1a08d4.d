/root/repo/target/debug/deps/sim_load_sweep-ee0676ac9d1a08d4.d: crates/bench/src/bin/sim_load_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsim_load_sweep-ee0676ac9d1a08d4.rmeta: crates/bench/src/bin/sim_load_sweep.rs Cargo.toml

crates/bench/src/bin/sim_load_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
