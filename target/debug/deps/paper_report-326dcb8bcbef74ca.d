/root/repo/target/debug/deps/paper_report-326dcb8bcbef74ca.d: crates/bench/src/bin/paper_report.rs

/root/repo/target/debug/deps/paper_report-326dcb8bcbef74ca: crates/bench/src/bin/paper_report.rs

crates/bench/src/bin/paper_report.rs:
