/root/repo/target/debug/deps/foundations-a258f7ff141c4978.d: crates/bench/benches/foundations.rs

/root/repo/target/debug/deps/foundations-a258f7ff141c4978: crates/bench/benches/foundations.rs

crates/bench/benches/foundations.rs:
