/root/repo/target/debug/deps/chaos-de982d9772a05d53.d: crates/sim/tests/chaos.rs

/root/repo/target/debug/deps/chaos-de982d9772a05d53: crates/sim/tests/chaos.rs

crates/sim/tests/chaos.rs:
