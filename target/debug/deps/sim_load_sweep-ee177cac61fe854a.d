/root/repo/target/debug/deps/sim_load_sweep-ee177cac61fe854a.d: crates/bench/src/bin/sim_load_sweep.rs

/root/repo/target/debug/deps/sim_load_sweep-ee177cac61fe854a: crates/bench/src/bin/sim_load_sweep.rs

crates/bench/src/bin/sim_load_sweep.rs:
