/root/repo/target/debug/deps/cli-6025a31e7b654d40.d: tests/cli.rs

/root/repo/target/debug/deps/cli-6025a31e7b654d40: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_arbitree=/root/repo/target/debug/arbitree
