/root/repo/target/debug/deps/stress-1dd72eed999e38b3.d: crates/sim/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-1dd72eed999e38b3.rmeta: crates/sim/tests/stress.rs Cargo.toml

crates/sim/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
