/root/repo/target/debug/deps/simulation-c98e1788b3bf95a4.d: crates/bench/benches/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation-c98e1788b3bf95a4.rmeta: crates/bench/benches/simulation.rs Cargo.toml

crates/bench/benches/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
