/root/repo/target/debug/deps/fig2-57500103abceb480.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/libfig2-57500103abceb480.rmeta: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
