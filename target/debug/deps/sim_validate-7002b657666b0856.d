/root/repo/target/debug/deps/sim_validate-7002b657666b0856.d: crates/bench/src/bin/sim_validate.rs

/root/repo/target/debug/deps/sim_validate-7002b657666b0856: crates/bench/src/bin/sim_validate.rs

crates/bench/src/bin/sim_validate.rs:
