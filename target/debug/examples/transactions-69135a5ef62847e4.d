/root/repo/target/debug/examples/transactions-69135a5ef62847e4.d: examples/transactions.rs Cargo.toml

/root/repo/target/debug/examples/libtransactions-69135a5ef62847e4.rmeta: examples/transactions.rs Cargo.toml

examples/transactions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
