/root/repo/target/debug/examples/protocol_comparison-79138fef30fd19b5.d: examples/protocol_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libprotocol_comparison-79138fef30fd19b5.rmeta: examples/protocol_comparison.rs Cargo.toml

examples/protocol_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
