/root/repo/target/debug/examples/live_reconfiguration-d26d3520c157c006.d: examples/live_reconfiguration.rs Cargo.toml

/root/repo/target/debug/examples/liblive_reconfiguration-d26d3520c157c006.rmeta: examples/live_reconfiguration.rs Cargo.toml

examples/live_reconfiguration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
