/root/repo/target/debug/examples/config_tuning-2cf400f7215e1924.d: examples/config_tuning.rs

/root/repo/target/debug/examples/config_tuning-2cf400f7215e1924: examples/config_tuning.rs

examples/config_tuning.rs:
