/root/repo/target/debug/examples/transactions-e6b9e6b6e4078ae0.d: examples/transactions.rs

/root/repo/target/debug/examples/transactions-e6b9e6b6e4078ae0: examples/transactions.rs

examples/transactions.rs:
