/root/repo/target/debug/examples/replicated_store-d4965f143095343f.d: examples/replicated_store.rs

/root/repo/target/debug/examples/replicated_store-d4965f143095343f: examples/replicated_store.rs

examples/replicated_store.rs:
