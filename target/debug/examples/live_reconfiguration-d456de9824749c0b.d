/root/repo/target/debug/examples/live_reconfiguration-d456de9824749c0b.d: examples/live_reconfiguration.rs

/root/repo/target/debug/examples/live_reconfiguration-d456de9824749c0b: examples/live_reconfiguration.rs

examples/live_reconfiguration.rs:
