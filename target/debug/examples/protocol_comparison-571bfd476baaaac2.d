/root/repo/target/debug/examples/protocol_comparison-571bfd476baaaac2.d: examples/protocol_comparison.rs

/root/repo/target/debug/examples/protocol_comparison-571bfd476baaaac2: examples/protocol_comparison.rs

examples/protocol_comparison.rs:
