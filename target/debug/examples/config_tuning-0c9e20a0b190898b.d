/root/repo/target/debug/examples/config_tuning-0c9e20a0b190898b.d: examples/config_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libconfig_tuning-0c9e20a0b190898b.rmeta: examples/config_tuning.rs Cargo.toml

examples/config_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
