/root/repo/target/debug/examples/quickstart-a9021cc06cb09f49.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a9021cc06cb09f49.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
