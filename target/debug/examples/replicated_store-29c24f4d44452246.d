/root/repo/target/debug/examples/replicated_store-29c24f4d44452246.d: examples/replicated_store.rs Cargo.toml

/root/repo/target/debug/examples/libreplicated_store-29c24f4d44452246.rmeta: examples/replicated_store.rs Cargo.toml

examples/replicated_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
