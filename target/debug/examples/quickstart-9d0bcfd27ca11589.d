/root/repo/target/debug/examples/quickstart-9d0bcfd27ca11589.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9d0bcfd27ca11589: examples/quickstart.rs

examples/quickstart.rs:
