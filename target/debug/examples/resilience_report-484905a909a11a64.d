/root/repo/target/debug/examples/resilience_report-484905a909a11a64.d: examples/resilience_report.rs

/root/repo/target/debug/examples/resilience_report-484905a909a11a64: examples/resilience_report.rs

examples/resilience_report.rs:
