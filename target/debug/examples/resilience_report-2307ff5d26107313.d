/root/repo/target/debug/examples/resilience_report-2307ff5d26107313.d: examples/resilience_report.rs Cargo.toml

/root/repo/target/debug/examples/libresilience_report-2307ff5d26107313.rmeta: examples/resilience_report.rs Cargo.toml

examples/resilience_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
