//! Multi-object transactions (§2.2's model): clients issue transactions of
//! up to four reads/writes over distinct objects; locks are acquired in
//! object order (deadlock-free strict 2PL) and all written objects commit
//! through a single two-phase commit. The run injects crashes and verifies
//! atomicity and per-object linearizability offline.
//!
//! Run with: `cargo run --example transactions`

use arbitree::core::ArbitraryProtocol;
use arbitree::sim::{SimConfig, SimDuration, SimTime, Simulation};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let protocol = ArbitraryProtocol::parse("1-3-5")?;
    let config = SimConfig {
        seed: 11,
        clients: 6,
        objects: 6,
        max_txn_ops: 4,
        read_fraction: 0.5,
        record_history: true,
        duration: SimDuration::from_millis(400),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(config, protocol);
    // Crash and recover a site from each level mid-run.
    sim.schedule_crash(SimTime::from_millis(100), arbitree::quorum::SiteId::new(0));
    sim.schedule_recover(SimTime::from_millis(200), arbitree::quorum::SiteId::new(0));
    sim.schedule_crash(SimTime::from_millis(150), arbitree::quorum::SiteId::new(5));
    sim.schedule_recover(SimTime::from_millis(250), arbitree::quorum::SiteId::new(5));
    let report = sim.run();

    println!(
        "transactions : {} ok, {} aborted",
        report.metrics.txns_ok, report.metrics.txns_failed
    );
    println!(
        "operations   : {} reads, {} writes",
        report.metrics.reads_ok, report.metrics.writes_ok
    );
    println!(
        "p50 latency  : {:?}",
        report.metrics.latency_histogram.p50()
    );
    println!(
        "p99 latency  : {:?}",
        report.metrics.latency_histogram.p99()
    );

    // Atomicity at a glance: transactions touching several objects appear
    // in the history with one event per touched object, all committed.
    let mut ops_per_txn: HashMap<u64, usize> = HashMap::new();
    for e in report.history.events() {
        *ops_per_txn.entry(e.op.0).or_insert(0) += 1;
    }
    let multi = ops_per_txn.values().filter(|&&c| c > 1).count();
    println!("multi-object transactions committed: {multi}");

    let violations = report.history.check_linearizable();
    println!(
        "offline per-object linearizability: {} violations",
        violations.len()
    );
    println!("online one-copy consistency: {}", report.consistent);
    assert!(report.consistent && violations.is_empty());
    Ok(())
}
