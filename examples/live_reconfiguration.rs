//! Live reconfiguration inside the simulator: a running system shifts from
//! the `MOSTLY-READ` shape to a write-friendly shape *while serving
//! traffic*, with the consistency checker active throughout. Demonstrates
//! the paper's claim that changing workloads need only a tree change —
//! never a protocol change.
//!
//! Run with: `cargo run --example live_reconfiguration`

use arbitree::core::ArbitraryProtocol;
use arbitree::sim::{SimConfig, SimDuration, SimTime, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let before = ArbitraryProtocol::parse("1-12")?; // ROWA-like
    let after = ArbitraryProtocol::parse("1-2-4-6")?; // write-friendlier

    println!("start : {}", before.tree().spec());
    println!("target: {}\n", after.tree().spec());
    println!("{}", arbitree::core::render_tree(after.tree()));

    let config = SimConfig {
        seed: 7,
        clients: 5,
        objects: 4,
        read_fraction: 0.3, // the workload has become write-heavy
        duration: SimDuration::from_millis(400),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(config, before);
    sim.schedule_reconfigure(SimTime::from_millis(150), after);
    let report = sim.run();

    println!("final shape      : {}", sim.protocol().describe());
    println!("reconfigurations : {}", report.metrics.reconfigurations);
    println!("migration writes : {}", report.metrics.migration_writes);
    println!("traffic          : {}", report.metrics);
    println!("consistent       : {}", report.consistent);
    assert!(report.consistent);
    assert_eq!(report.metrics.reconfigurations, 1);

    // The write path is now cheap: a write quorum can be as small as the
    // 2-replica level instead of all 12 replicas.
    let wc = report.metrics.empirical_write_cost().unwrap_or(f64::NAN);
    println!("mean write-quorum size over the whole run: {wc:.2}");
    Ok(())
}
