//! Quickstart: build an arbitrary tree, inspect its analytic metrics, and
//! run a short fault-injected simulation verifying one-copy consistency.
//!
//! Run with: `cargo run --example quickstart`

use arbitree::core::{ArbitraryProtocol, TreeMetrics};
use arbitree::quorum::ReplicaControl;
use arbitree::sim::{FailureSchedule, SimConfig, SimDuration, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: 8 replicas, a logical root, two physical
    // levels of 3 and 5 replicas ("1-3-5").
    let protocol = ArbitraryProtocol::parse("1-3-5")?;
    let metrics = TreeMetrics::new(protocol.tree());

    println!("{}", arbitree::core::render_tree(protocol.tree()));
    println!("tree      : {}", protocol.tree().spec());
    println!("replicas  : {}", protocol.tree().replica_count());
    println!("read cost : {}", protocol.read_cost());
    println!("write cost: {}", protocol.write_cost());
    println!(
        "read load : {:.4} (optimal: 1/d = 1/3)",
        metrics.read_load()
    );
    println!(
        "write load: {:.4} (optimal: 1/|K_phy| = 1/2)",
        metrics.write_load()
    );
    println!("read avail (p=0.7) : {:.4}", metrics.read_availability(0.7));
    println!(
        "write avail (p=0.7): {:.4}",
        metrics.write_availability(0.7)
    );

    // Enumerate the quorums: any physical node of every physical level for
    // reads, a full physical level for writes.
    println!("\nwrite quorums:");
    for q in protocol.write_quorums() {
        println!("  {q}");
    }
    println!(
        "read quorums: {} total (first three shown)",
        protocol.read_quorums().count()
    );
    for q in protocol.read_quorums().take(3) {
        println!("  {q}");
    }

    // Run a deterministic simulation with a crash and a recovery.
    let config = SimConfig {
        seed: 42,
        clients: 4,
        objects: 2,
        read_fraction: 0.7,
        duration: SimDuration::from_millis(250),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(config, protocol);
    let mut failures = FailureSchedule::none();
    failures
        .crash(
            arbitree::sim::SimTime::from_millis(40),
            arbitree::quorum::SiteId::new(0),
        )
        .recover(
            arbitree::sim::SimTime::from_millis(120),
            arbitree::quorum::SiteId::new(0),
        );
    failures.apply(&mut sim);
    let report = sim.run();

    println!("\nsimulation: {}", report.metrics);
    println!("mean latency: {:?}", report.metrics.mean_latency());
    println!("one-copy consistent: {}", report.consistent);
    assert!(report.consistent);
    Ok(())
}
