//! A fault-tolerant replicated store under sustained failure churn:
//! clients read and write through the arbitrary protocol while sites crash
//! and recover, the network drops messages, and a checker verifies
//! one-copy equivalence throughout.
//!
//! Run with: `cargo run --example replicated_store`

use arbitree::core::builder::balanced;
use arbitree::core::{ArbitraryProtocol, ArbitraryTree, TreeMetrics};
use arbitree::sim::{run_simulation, FailureSchedule, NetworkConfig, SimConfig, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 66-replica store shaped by Algorithm 1 (write load 1/sqrt(n)).
    let n = 66;
    let spec = balanced(n)?;
    let tree = ArbitraryTree::from_spec(&spec)?;
    println!("store shape: {spec}  (n = {n})");
    let (read_cost, write_cost, write_load) = {
        let metrics = TreeMetrics::new(&tree);
        (
            metrics.read_cost().avg,
            metrics.write_cost().avg,
            metrics.write_load(),
        )
    };
    println!("closed forms: read cost {read_cost}, write cost {write_cost:.1}, write load {write_load:.4}");

    let config = SimConfig {
        seed: 2024,
        clients: 6,
        objects: 8,
        read_fraction: 0.8,
        network: NetworkConfig {
            drop_probability: 0.02,
            ..NetworkConfig::default()
        },
        duration: SimDuration::from_millis(400),
        ..SimConfig::default()
    };

    // Aggressive churn: sites stay up ~80 ms, down ~20 ms.
    let failures = FailureSchedule::random(
        n,
        config.duration,
        SimDuration::from_millis(80),
        SimDuration::from_millis(20),
        7,
    );
    println!("failure events injected: {}", failures.events().len());

    let protocol = ArbitraryProtocol::new(tree);
    let report = run_simulation(config, protocol, &failures);

    println!("\n{}", report.metrics);
    println!(
        "reads:  {} ok, {} failed ({} checked for consistency)",
        report.metrics.reads_ok, report.metrics.reads_failed, report.reads_checked
    );
    println!(
        "writes: {} ok, {} failed ({} recorded)",
        report.metrics.writes_ok, report.metrics.writes_failed, report.writes_recorded
    );
    println!(
        "empirical read cost: {:?} (closed form {read_cost})",
        report.metrics.empirical_read_cost(),
    );
    println!("incomplete at shutdown: {}", report.ops_incomplete);
    println!("one-copy consistent: {}", report.consistent);
    assert!(report.consistent, "consistency violated!");
    Ok(())
}
