//! Configuration tuning — the paper's headline feature: the protocol is a
//! *spectrum* tuned by tree shape alone. This example plans the best shape
//! for several read/write mixes, then shows the migration (which replicas
//! change level) when the workload shifts, without changing the protocol.
//!
//! Run with: `cargo run --example config_tuning`

use arbitree::core::planner::{objective, plan, reconfigure, Workload};
use arbitree::core::{ArbitraryTree, TreeMetrics};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 48;
    let p = 0.9;

    println!("Planning the tree shape for {n} replicas at per-replica availability {p}\n");
    println!(
        "{:<14} {:>8} {:>14} {:>10} {:>10}",
        "workload", "levels", "shape", "E[L_RD]", "E[L_WR]"
    );
    let mut plans = Vec::new();
    for (label, read_fraction) in [
        ("pure read", 1.0),
        ("read heavy", 0.95),
        ("balanced", 0.5),
        ("write heavy", 0.05),
        ("pure write", 0.0),
    ] {
        let workload = Workload::new(read_fraction, p);
        let best = plan(n, workload)?;
        let tree = ArbitraryTree::from_spec(&best.spec)?;
        let m = TreeMetrics::new(&tree);
        println!(
            "{:<14} {:>8} {:>14} {:>10.4} {:>10.4}",
            label,
            best.physical_levels,
            best.spec.to_string(),
            m.expected_read_load(p),
            m.expected_write_load(p),
        );
        plans.push((label, best));
    }

    // The workload shifts from read-heavy to write-heavy: reconfigure.
    let from = &plans[1].1.spec;
    let to = &plans[3].1.spec;
    let migration = reconfigure(from, to)?;
    println!("\nWorkload shift: {} -> {}", from, to);
    println!("{migration}");
    for mv in migration.moves().iter().take(6) {
        println!(
            "  {} : level {} -> level {}",
            mv.site, mv.from_level, mv.to_level
        );
    }
    if migration.moves().len() > 6 {
        println!("  ... and {} more", migration.moves().len() - 6);
    }

    // Sanity: the planner's objective really is better after the shift.
    let write_heavy = Workload::new(0.05, p);
    let before = objective(from, write_heavy)?;
    let after = objective(to, write_heavy)?;
    println!("\nobjective under the new workload: {before:.4} -> {after:.4}");
    assert!(after < before);
    println!("(no new protocol was implemented — only the tree changed)");
    Ok(())
}
