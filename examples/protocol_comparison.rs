//! Side-by-side comparison of all protocols in the workspace — the six §4
//! configurations plus ROWA, Majority, Grid and Maekawa — at a common
//! target size: communication costs, loads, availability, and a live
//! simulation of each.
//!
//! Run with: `cargo run --example protocol_comparison [-- <n>]`

use arbitree::analysis::Configuration;
use arbitree::baselines::{Grid, Maekawa, Majority, Rowa};
use arbitree::quorum::ReplicaControl;
use arbitree::sim::{run_simulation, FailureSchedule, SimConfig, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(27);
    let p = 0.8;

    let mut protocols: Vec<Box<dyn ReplicaControl>> = Vec::new();
    for config in Configuration::ALL {
        protocols.push(Box::new(config.build(n)));
    }
    protocols.push(Box::new(Rowa::new(n)));
    protocols.push(Box::new(Majority::new(n)));
    protocols.push(Box::new(Grid::square_like(n)));
    protocols.push(Box::new(Maekawa::square_like(n)));

    println!("Analytic comparison at target n = {n}, p = {p}");
    println!(
        "{:<13} {:>4} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "protocol", "n", "RDcost", "WRcost", "RDload", "WRload", "RDavail", "WRavail"
    );
    for proto in &protocols {
        println!(
            "{:<13} {:>4} {:>8.2} {:>8.2} {:>8.4} {:>8.4} {:>9.4} {:>9.4}",
            proto.name(),
            proto.universe().len(),
            proto.read_cost().avg,
            proto.write_cost().avg,
            proto.read_load(),
            proto.write_load(),
            proto.read_availability(p),
            proto.write_availability(p),
        );
    }

    println!("\nLive simulation (120 ms, churn, same seed for all):");
    println!(
        "{:<13} {:>9} {:>10} {:>10} {:>11} {:>11}",
        "protocol", "reads_ok", "reads_fail", "writes_ok", "writes_fail", "consistent"
    );
    for proto in protocols {
        let sites = proto.universe().len();
        if sites > 128 {
            continue;
        }
        let config = SimConfig {
            seed: 99,
            clients: 4,
            objects: 4,
            duration: SimDuration::from_millis(120),
            ..SimConfig::default()
        };
        let schedule = FailureSchedule::random(
            sites,
            config.duration,
            SimDuration::from_millis(50),
            SimDuration::from_millis(12),
            5,
        );
        let name = proto.name().to_string();
        let report = run_simulation(config, proto, &schedule);
        println!(
            "{:<13} {:>9} {:>10} {:>10} {:>11} {:>11}",
            name,
            report.metrics.reads_ok,
            report.metrics.reads_failed,
            report.metrics.writes_ok,
            report.metrics.writes_failed,
            report.consistent,
        );
        assert!(report.consistent, "{name} violated consistency");
    }
    Ok(())
}
