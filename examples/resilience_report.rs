//! Resilience analysis across configurations: exact worst-case fault
//! tolerance (blocking numbers), availability at several `p`, and coterie
//! quality (domination) — the fault-tolerance story behind the paper's
//! availability formulas.
//!
//! Run with: `cargo run --example resilience_report`

use arbitree::analysis::Configuration;
use arbitree::quorum::{blocking_number, is_dominated, ReplicaControl, SetSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 15;
    println!("Resilience of the six configurations at target n = {n}\n");
    println!(
        "{:<13} {:>3} {:>10} {:>10} {:>12} {:>12}",
        "config", "n", "read-tol", "write-tol", "RDavail(.8)", "WRavail(.8)"
    );
    for config in Configuration::ALL {
        let proto = config.build(n);
        let u = proto.universe();
        let reads = SetSystem::new(u, proto.read_quorums().collect())?;
        let writes = SetSystem::new(u, proto.write_quorums().collect())?;
        let (rk, _) = blocking_number(&reads);
        let (wk, _) = blocking_number(&writes);
        println!(
            "{:<13} {:>3} {:>10} {:>10} {:>12.4} {:>12.4}",
            proto.name(),
            u.len(),
            rk - 1,
            wk - 1,
            proto.read_availability(0.8),
            proto.write_availability(0.8),
        );
    }

    println!("\nCoterie quality (small instances):");
    // The tree-quorum coterie of height 2 vs the majority coterie of 7.
    let tq = arbitree::baselines::TreeQuorum::new(2);
    let tq_sys = SetSystem::new(tq.universe(), tq.read_quorums().collect())?;
    println!(
        "  tree-quorum h=2 coterie: {} quorums, dominated = {}",
        tq_sys.len(),
        is_dominated(&tq_sys)
    );
    let maj = arbitree::baselines::Majority::new(7);
    let maj_sys = SetSystem::new(maj.universe(), maj.read_quorums().collect())?;
    println!(
        "  majority-of-7 coterie:   {} quorums, dominated = {}",
        maj_sys.len(),
        is_dominated(&maj_sys)
    );

    println!("\nReading the table:");
    println!("  MOSTLY-READ reads survive n-1 failures but writes survive none (ROWA);");
    println!("  the arbitrary protocol trades between those extremes: read tolerance d-1,");
    println!("  write tolerance |K_phy|-1 — both tuned by the tree shape alone.");
    Ok(())
}
