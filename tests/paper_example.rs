//! Golden tests reproducing every number the paper states for its running
//! example (§3.4, Table 1) and the named claims of §3.3 and §4.

use arbitree::core::builder::{balanced, complete_binary, mostly_read, mostly_write};
use arbitree::core::{
    read_quorum_count, write_quorum_count, ArbitraryTree, LevelSpec, TreeMetrics, TreeSpec,
};
use arbitree::quorum::ReplicaControl;

#[test]
fn table_1_bookkeeping() {
    let tree = ArbitraryTree::from_spec(&TreeSpec::new(vec![
        LevelSpec::logical(1),
        LevelSpec::physical(3),
        LevelSpec {
            physical: 5,
            logical: 4,
        },
    ]))
    .unwrap();
    // Table 1 rows.
    assert_eq!(
        (
            tree.level_total(0),
            tree.level_physical(0),
            tree.level_logical(0)
        ),
        (1, 0, 1)
    );
    assert_eq!(
        (
            tree.level_total(1),
            tree.level_physical(1),
            tree.level_logical(1)
        ),
        (3, 3, 0)
    );
    assert_eq!(
        (
            tree.level_total(2),
            tree.level_physical(2),
            tree.level_logical(2)
        ),
        (9, 5, 4)
    );
    // §3.4 bullet points.
    assert_eq!(tree.replica_count(), 8);
    assert_eq!(tree.physical_levels(), &[1, 2]);
    assert_eq!(tree.logical_levels(), &[0]);
    assert_eq!(read_quorum_count(&tree), Some(15));
    assert_eq!(write_quorum_count(&tree), 2);
}

#[test]
fn section_3_4_metrics() {
    let tree = ArbitraryTree::parse("1-3-5").unwrap();
    let m = TreeMetrics::new(&tree);
    let p = 0.7;
    assert_eq!(m.read_cost().avg, 2.0);
    // Paper rounds RDavail to 0.97; exact value is 0.9706…
    assert!((m.read_availability(p) - 0.97).abs() < 0.005);
    assert!((m.read_load() - 1.0 / 3.0).abs() < 1e-12);
    assert_eq!(m.write_cost().min, 3.0);
    assert_eq!(m.write_cost().max, 5.0);
    assert_eq!(m.write_cost().avg, 4.0);
    // Paper rounds WRavail to 0.45; exact 0.4534…
    assert!((m.write_availability(p) - 0.45).abs() < 0.005);
    assert!((m.write_load() - 0.5).abs() < 1e-12);
    // E[L_RD] = 0.35, E[L_WR] = 0.775 per equation 3.2.
    assert!((m.expected_read_load(p) - 0.35).abs() < 0.005);
    assert!((m.expected_write_load(p) - 0.775).abs() < 0.005);
}

#[test]
fn section_3_3_recommended_small_configuration() {
    // n > 32, p > 0.65: seven 4-wide levels plus the rest.
    let spec = balanced(40).unwrap();
    let counts = spec.physical_counts();
    assert_eq!(&counts[..7], &[4, 4, 4, 4, 4, 4, 4]);
    assert_eq!(counts[7], 12);
    assert_eq!(spec.replica_count(), 40);
}

#[test]
fn algorithm_1_headline_numbers() {
    // Write load 1/sqrt(n), read load 1/4, both costs ~sqrt(n).
    for n in [100usize, 144, 256, 400] {
        let tree = ArbitraryTree::from_spec(&balanced(n).unwrap()).unwrap();
        let m = TreeMetrics::new(&tree);
        let sqrt = (n as f64).sqrt();
        assert!((m.write_load() - 1.0 / sqrt).abs() < 1e-9, "n={n}");
        assert_eq!(m.read_load(), 0.25, "n={n}");
        assert!((m.read_cost().avg - sqrt).abs() < 1.0, "n={n}");
        assert!((m.write_cost().avg - sqrt).abs() < 1.0, "n={n}");
        // Combined cost ≈ 2√n (conclusion).
        let combined = m.read_cost().avg + m.write_cost().avg;
        assert!((combined - 2.0 * sqrt).abs() < 2.0, "n={n}");
    }
}

#[test]
fn section_3_3_availability_limits() {
    use arbitree::core::{algorithm1_read_availability_limit, algorithm1_write_availability_limit};
    // The limits are approached from the finite formulas as n grows.
    for &p in &[0.6, 0.75, 0.9] {
        let big = ArbitraryTree::from_spec(&balanced(10_000).unwrap()).unwrap();
        let m = TreeMetrics::new(&big);
        assert!(
            (m.write_availability(p) - algorithm1_write_availability_limit(p)).abs() < 0.01,
            "p={p}"
        );
        assert!(
            (m.read_availability(p) - algorithm1_read_availability_limit(p)).abs() < 0.01,
            "p={p}"
        );
    }
    // For p > 0.8 both ≈ 1.
    assert!(algorithm1_read_availability_limit(0.85) > 0.98);
    assert!(algorithm1_write_availability_limit(0.85) > 0.97);
}

#[test]
fn unmodified_lower_bound_claim() {
    // §3.3: write load 1/log2(n+1), strictly below Naor–Wool's
    // 2/(log2(n+1)+1); writes highly available (> p), reads poorly (< p).
    for h in 2..9usize {
        let tree = ArbitraryTree::from_spec(&complete_binary(h).unwrap()).unwrap();
        let m = TreeMetrics::new(&tree);
        let n = tree.replica_count() as f64;
        let log = (n + 1.0).log2();
        assert!((m.write_load() - 1.0 / log).abs() < 1e-12);
        assert!(m.write_load() < 2.0 / (log + 1.0));
        assert!((m.write_cost().avg - n / log).abs() < 1e-9);
        assert_eq!(m.read_cost().avg, log);
        assert_eq!(m.read_load(), 1.0);
        for &p in &[0.55, 0.7, 0.9] {
            assert!(m.write_availability(p) > p, "h={h} p={p}");
            assert!(m.read_availability(p) < p, "h={h} p={p}");
        }
    }
}

#[test]
fn mostly_read_and_mostly_write_extremes() {
    // §4: MOSTLY-READ = ROWA-like; MOSTLY-WRITE cost 2 / load 2/(n−1).
    let n = 101;
    let mr = ArbitraryTree::from_spec(&mostly_read(n).unwrap()).unwrap();
    let m = TreeMetrics::new(&mr);
    assert_eq!(m.read_cost().avg, 1.0);
    assert_eq!(m.write_cost().avg, n as f64);
    assert!((m.read_load() - 1.0 / n as f64).abs() < 1e-12);
    assert_eq!(m.write_load(), 1.0);

    let mw = ArbitraryTree::from_spec(&mostly_write(n).unwrap()).unwrap();
    let m = TreeMetrics::new(&mw);
    assert_eq!(m.write_cost().min, 2.0);
    assert!((m.write_load() - 2.0 / (n as f64 - 1.0)).abs() < 1e-12);
    assert_eq!(m.read_cost().avg, (n as f64 - 1.0) / 2.0);
    assert_eq!(m.read_load(), 0.5);
}

#[test]
fn bicoterie_proof_by_construction() {
    // §3.2.3's induction, checked exhaustively on several shapes.
    for spec in ["1-2", "1-3-5", "1-2-2-2-3", "1-4-4-4", "p:1-2-4"] {
        let tree = ArbitraryTree::parse(spec).unwrap();
        let proto = arbitree::core::ArbitraryProtocol::new(tree);
        proto
            .to_bicoterie()
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
    }
}
