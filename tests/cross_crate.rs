//! Integration tests spanning crates: every protocol in the workspace is
//! checked against the generic quorum foundations (bicoterie validity, LP
//! loads, exhaustive availability) and driven through the simulator.

use arbitree::analysis::Configuration;
use arbitree::baselines::{Grid, Hqc, Maekawa, Majority, Rowa, TreeQuorum};
use arbitree::core::ArbitraryProtocol;
use arbitree::quorum::{exact_availability, optimal_load, ReplicaControl};
use arbitree::sim::{run_simulation, FailureSchedule, SimConfig, SimDuration};

fn all_small_protocols() -> Vec<Box<dyn ReplicaControl>> {
    vec![
        Box::new(ArbitraryProtocol::parse("1-3-5").unwrap()),
        Box::new(ArbitraryProtocol::parse("1-2-2-3").unwrap()),
        Box::new(Rowa::new(7)),
        Box::new(Majority::new(7)),
        Box::new(TreeQuorum::new(2)),
        Box::new(Hqc::new(2)),
        Box::new(Grid::new(3, 3)),
        Box::new(Maekawa::new(3, 3)),
    ]
}

#[test]
fn every_protocol_is_a_valid_bicoterie() {
    for proto in all_small_protocols() {
        proto
            .to_bicoterie()
            .unwrap_or_else(|e| panic!("{}: {e}", proto.name()));
    }
}

#[test]
fn closed_form_availability_matches_enumeration_everywhere() {
    for proto in all_small_protocols() {
        let b = proto.to_bicoterie().unwrap();
        for &p in &[0.6, 0.8] {
            let read = exact_availability(b.read_quorums(), p);
            let write = exact_availability(b.write_quorums(), p);
            assert!(
                (read - proto.read_availability(p)).abs() < 1e-6,
                "{} read p={p}: {read} vs {}",
                proto.name(),
                proto.read_availability(p)
            );
            assert!(
                (write - proto.write_availability(p)).abs() < 1e-6,
                "{} write p={p}: {write} vs {}",
                proto.name(),
                proto.write_availability(p)
            );
        }
    }
}

#[test]
fn reported_loads_are_achievable_lp_loads() {
    // For protocols whose canonical strategy is load-optimal, the reported
    // load must equal the LP optimum of the enumerated system. BINARY
    // reports the Naor–Wool optimum (its operational strategy is
    // cost-optimal instead), so it is checked as a lower bound.
    for proto in all_small_protocols() {
        let b = proto.to_bicoterie().unwrap();
        let (read_lp, _) = optimal_load(b.read_quorums());
        let (write_lp, _) = optimal_load(b.write_quorums());
        assert!(
            read_lp <= proto.read_load() + 1e-6,
            "{}: LP read load {read_lp} exceeds reported {}",
            proto.name(),
            proto.read_load()
        );
        assert!(
            write_lp <= proto.write_load() + 1e-6,
            "{}: LP write load {write_lp} exceeds reported {}",
            proto.name(),
            proto.write_load()
        );
        if proto.name() != "BINARY" {
            assert!(
                (read_lp - proto.read_load()).abs() < 1e-5,
                "{}: read load {read_lp} vs {}",
                proto.name(),
                proto.read_load()
            );
        }
    }
}

#[test]
fn cost_profiles_match_enumerated_sizes() {
    for proto in all_small_protocols() {
        let b = proto.to_bicoterie().unwrap();
        assert_eq!(
            b.read_quorums().min_quorum_size() as f64,
            proto.read_cost().min,
            "{} read min",
            proto.name()
        );
        assert_eq!(
            b.read_quorums().max_quorum_size() as f64,
            proto.read_cost().max,
            "{} read max",
            proto.name()
        );
        assert_eq!(
            b.write_quorums().min_quorum_size() as f64,
            proto.write_cost().min,
            "{} write min",
            proto.name()
        );
        assert_eq!(
            b.write_quorums().max_quorum_size() as f64,
            proto.write_cost().max,
            "{} write max",
            proto.name()
        );
    }
}

#[test]
fn simulator_keeps_every_protocol_consistent() {
    for proto in all_small_protocols() {
        let n = proto.universe().len();
        let name = proto.name().to_string();
        let config = SimConfig {
            seed: 21,
            duration: SimDuration::from_millis(100),
            ..SimConfig::default()
        };
        let schedule = FailureSchedule::random(
            n,
            config.duration,
            SimDuration::from_millis(40),
            SimDuration::from_millis(10),
            3,
        );
        let report = run_simulation(config, proto, &schedule);
        assert!(
            report.consistent,
            "{name}: {} violations",
            report.violations
        );
    }
}

#[test]
fn configurations_build_and_expose_consistent_metrics() {
    for config in Configuration::ALL {
        for n in [9usize, 31, 81] {
            let proto = config.build(n);
            // Loads are probabilities; availability is monotone in p.
            assert!(
                proto.read_load() > 0.0 && proto.read_load() <= 1.0,
                "{config} n={n}"
            );
            assert!(proto.write_load() > 0.0 && proto.write_load() <= 1.0);
            assert!(proto.read_availability(0.9) >= proto.read_availability(0.6) - 1e-9);
            assert!(proto.write_availability(0.9) >= proto.write_availability(0.6) - 1e-9);
            // Cost profile sanity.
            let rc = proto.read_cost();
            assert!(rc.min <= rc.max, "{config} n={n}");
            let wc = proto.write_cost();
            assert!(wc.min <= wc.max);
            assert!(wc.max <= proto.universe().len() as f64 + 1e-9);
        }
    }
}

#[test]
fn expected_loads_interpolate_between_load_and_one() {
    for proto in all_small_protocols() {
        for &p in &[0.5, 0.7, 0.9, 1.0] {
            let er = proto.expected_read_load(p);
            let ew = proto.expected_write_load(p);
            assert!(
                er >= proto.read_load() - 1e-9 && er <= 1.0 + 1e-9,
                "{}",
                proto.name()
            );
            assert!(
                ew >= proto.write_load() - 1e-9 && ew <= 1.0 + 1e-9,
                "{}",
                proto.name()
            );
        }
        assert!((proto.expected_read_load(1.0) - proto.read_load()).abs() < 1e-9);
        assert!((proto.expected_write_load(1.0) - proto.write_load()).abs() < 1e-9);
    }
}
