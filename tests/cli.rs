//! End-to-end tests of the `arbitree` command-line binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_arbitree"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn analyze_prints_paper_example_metrics() {
    let (ok, stdout, _) = run(&["analyze", "1-3-5", "0.7"]);
    assert!(ok);
    assert!(stdout.contains("replicas       : 8"));
    assert!(stdout.contains("m(R) = 15"));
    assert!(stdout.contains("0.3333")); // read load 1/d
}

#[test]
fn render_draws_the_tree() {
    let (ok, stdout, _) = run(&["render", "1-3-5"]);
    assert!(ok);
    assert!(stdout.contains("level 0 [log]"));
    assert!(stdout.contains("(s7)"));
}

#[test]
fn plan_picks_rowa_for_pure_reads() {
    let (ok, stdout, _) = run(&["plan", "20", "1.0", "0.9"]);
    assert!(ok);
    assert!(stdout.contains("1-20"), "{stdout}");
}

#[test]
fn frontier_lists_extremes() {
    let (ok, stdout, _) = run(&["frontier", "12", "0.9"]);
    assert!(ok);
    assert!(stdout.contains("1-12"));
    assert!(stdout.contains("1-2-2-2-2-2-2"));
}

#[test]
fn compare_shows_all_six_configurations() {
    let (ok, stdout, _) = run(&["compare", "27"]);
    assert!(ok);
    for name in [
        "BINARY",
        "UNMODIFIED",
        "ARBITRARY",
        "HQC",
        "MOSTLY-READ",
        "MOSTLY-WRITE",
    ] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn simulate_reports_consistency() {
    let (ok, stdout, _) = run(&["simulate", "1-3-5", "7"]);
    assert!(ok);
    assert!(stdout.contains("consistent   : true"));
}

#[test]
fn faults_reports_blocking_numbers() {
    let (ok, stdout, _) = run(&["faults", "1-3-5"]);
    assert!(ok);
    assert!(stdout.contains("reads  survive any 2 failures"));
    assert!(stdout.contains("writes survive any 1 failures"));
}

#[test]
fn bad_usage_fails_with_usage_text() {
    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
    let (ok, _, stderr) = run(&["analyze", "not-a-spec"]);
    assert!(!ok);
    assert!(stderr.contains("error:"));
}

#[test]
fn migrate_prints_bounded_steps() {
    let (ok, stdout, _) = run(&["migrate", "1-16", "1-2-6-8", "4"]);
    assert!(ok);
    assert!(stdout.contains("steps of <= 4 moves"));
    assert!(stdout.trim_end().ends_with("1-2-6-8"));
}
