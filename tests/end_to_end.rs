//! End-to-end pipeline tests: workload → planner → protocol → simulation →
//! verified consistency and metric agreement — the full user journey the
//! README describes.

use arbitree::core::planner::{plan, reconfigure, Workload};
use arbitree::core::{ArbitraryProtocol, ArbitraryTree, TreeMetrics};
use arbitree::quorum::ReplicaControl;
use arbitree::sim::{
    empirical_availability, empirical_cost, empirical_load, run_simulation, FailureSchedule,
    SimConfig, SimDuration,
};

#[test]
fn plan_build_simulate_verify() {
    let n = 24;
    let workload = Workload::new(0.75, 0.9);
    let best = plan(n, workload).unwrap();
    let tree = ArbitraryTree::from_spec(&best.spec).unwrap();
    let proto = ArbitraryProtocol::new(tree);

    let config = SimConfig {
        seed: 77,
        clients: 5,
        objects: 4,
        read_fraction: 0.75,
        duration: SimDuration::from_millis(250),
        ..SimConfig::default()
    };
    let schedule = FailureSchedule::random(
        n,
        config.duration,
        SimDuration::from_millis(70),
        SimDuration::from_millis(15),
        5,
    );
    let report = run_simulation(config, proto, &schedule);
    assert!(report.consistent, "{} violations", report.violations);
    assert!(report.metrics.reads_ok > 20);
    assert!(report.metrics.writes_ok > 0);
}

#[test]
fn empirical_metrics_agree_with_planner_expectations() {
    let n = 36;
    let best = plan(n, Workload::balanced(0.9)).unwrap();
    let tree = ArbitraryTree::from_spec(&best.spec).unwrap();
    let m = TreeMetrics::new(&tree);
    let closed = (
        m.read_availability(0.85),
        m.write_availability(0.85),
        m.read_load(),
        m.write_load(),
        m.read_cost().avg,
        m.write_cost().avg,
    );
    let proto = ArbitraryProtocol::new(tree);
    let (ar, aw) = empirical_availability(&proto, 0.85, 30_000, 1);
    let (lr, lw) = empirical_load(&proto, 30_000, 2);
    let (cr, cw) = empirical_cost(&proto, 30_000, 3);
    assert!(
        (ar - closed.0).abs() < 0.01,
        "read avail {ar} vs {}",
        closed.0
    );
    assert!(
        (aw - closed.1).abs() < 0.01,
        "write avail {aw} vs {}",
        closed.1
    );
    assert!(
        (lr - closed.2).abs() < 0.02,
        "read load {lr} vs {}",
        closed.2
    );
    assert!(
        (lw - closed.3).abs() < 0.02,
        "write load {lw} vs {}",
        closed.3
    );
    assert!(
        (cr - closed.4).abs() < 1e-9,
        "read cost {cr} vs {}",
        closed.4
    );
    assert!(
        (cw - closed.5).abs() < 0.2,
        "write cost {cw} vs {}",
        closed.5
    );
}

#[test]
fn reconfiguration_preserves_service() {
    // Run the same workload under the pre- and post-shift shapes; both must
    // be consistent, and the post-shift shape must serve writes cheaper.
    let n = 20;
    let read_shape = plan(n, Workload::new(0.95, 0.9)).unwrap().spec;
    let write_shape = plan(n, Workload::new(0.05, 0.9)).unwrap().spec;
    let migration = reconfigure(&read_shape, &write_shape).unwrap();
    assert!(!migration.moves().is_empty());

    let mut write_costs = Vec::new();
    for spec in [&read_shape, &write_shape] {
        let tree = ArbitraryTree::from_spec(spec).unwrap();
        write_costs.push(TreeMetrics::new(&tree).write_cost().avg);
        let proto = ArbitraryProtocol::new(tree);
        let config = SimConfig {
            seed: 3,
            read_fraction: 0.05,
            duration: SimDuration::from_millis(150),
            ..SimConfig::default()
        };
        let report = run_simulation(config, proto, &FailureSchedule::none());
        assert!(report.consistent);
        assert!(report.metrics.writes_ok > 0);
    }
    assert!(write_costs[1] < write_costs[0]);
}

#[test]
fn facade_reexports_compose() {
    // The facade crate exposes every layer under one namespace.
    let spec: arbitree::core::TreeSpec = "1-3-5".parse().unwrap();
    let tree = arbitree::core::ArbitraryTree::from_spec(&spec).unwrap();
    let proto = arbitree::core::ArbitraryProtocol::new(tree);
    let bic: arbitree::quorum::Bicoterie = proto.to_bicoterie().unwrap();
    assert_eq!(bic.read_quorums().len(), 15);
    let pt = arbitree::analysis::point(arbitree::analysis::Configuration::Arbitrary, 81, 0.8);
    assert_eq!(pt.n, 81);
}
